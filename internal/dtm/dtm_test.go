package dtm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/scaling"
	"repro/internal/thermal"
	"repro/internal/units"
)

func TestSlackShrinksWithPlatterSize(t *testing.T) {
	pts, err := Slack(nil, 1, thermal.DefaultAmbient)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.VCMOffRPM <= p.EnvelopeRPM {
			t.Errorf("%v: no slack (%v -> %v)", p.Size, p.EnvelopeRPM, p.VCMOffRPM)
		}
		if i > 0 && p.SlackRPM() >= pts[i-1].SlackRPM() {
			t.Errorf("slack should shrink with platter size: %v at %v vs %v at %v",
				p.SlackRPM(), p.Size, pts[i-1].SlackRPM(), pts[i-1].Size)
		}
	}
	// The paper's headline: the 2.6" drive has plenty of slack — enough to
	// run 10k+ RPM faster when idle.
	if pts[0].SlackRPM() < 8000 {
		t.Errorf("2.6\" slack = %v RPM, expected a large gap", pts[0].SlackRPM())
	}
}

func TestSlackDefaultsAndErrors(t *testing.T) {
	pts, err := Slack([]units.Inches{2.6}, 0, thermal.DefaultAmbient)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Platters != 1 {
		t.Error("platter default not applied")
	}
	if _, err := Slack([]units.Inches{9.9}, 1, thermal.DefaultAmbient); err == nil {
		t.Error("oversized platter should error")
	}
}

func TestSlackEnablesRevisedRoadmap(t *testing.T) {
	// Figure 5(b): the VCM-off design point strictly dominates the envelope
	// design, extending how long the 2.6" size meets the 40% line.
	on, err := scaling.Roadmap(scaling.Config{PlatterSizes: []units.Inches{2.6}})
	if err != nil {
		t.Fatal(err)
	}
	off, err := scaling.Roadmap(scaling.Config{PlatterSizes: []units.Inches{2.6}, VCMOff: true})
	if err != nil {
		t.Fatal(err)
	}
	onIdx, offIdx := scaling.ByYearSize(on), scaling.ByYearSize(off)
	for y := 2002; y <= 2012; y++ {
		if offIdx[y][2.6].MaxIDR <= onIdx[y][2.6].MaxIDR {
			t.Errorf("year %d: slack design not faster", y)
		}
	}
	// The paper: the 2.6" slack design exceeds the target until 2005-2006.
	if !offIdx[2005][2.6].MeetsTarget {
		t.Error("2.6\" slack design should still meet the 2005 target")
	}
	if offIdx[2008][2.6].MeetsTarget {
		t.Error("2.6\" slack design should no longer meet the 2008 target")
	}
}

func TestThrottleModeString(t *testing.T) {
	if VCMOnly.String() != "VCM-only" || VCMAndRPM.String() != "VCM+RPM" {
		t.Error("mode names wrong")
	}
	if ThrottleMode(9).String() == "" {
		t.Error("unknown mode should print")
	}
}

func TestFigure7aRatioDecreasesWithTCool(t *testing.T) {
	e := Figure7a()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	sweep, err := e.Sweep([]time.Duration{
		500 * time.Millisecond, 2 * time.Second, 8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Ratio >= sweep[i-1].Ratio {
			t.Errorf("ratio not decreasing: %.2f at %v vs %.2f at %v",
				sweep[i].Ratio, sweep[i].TCool, sweep[i-1].Ratio, sweep[i-1].TCool)
		}
	}
	// Short pauses buy disproportionate active time; long pauses waste it.
	if sweep[0].Ratio < 1 {
		t.Errorf("sub-second throttling ratio %.2f, expected > 1", sweep[0].Ratio)
	}
}

func TestFigure7bDualSpeed(t *testing.T) {
	e := Figure7b()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	sweep, err := e.Sweep([]time.Duration{time.Second, 4 * time.Second, 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Decreasing, and the ratio crosses 1 inside the paper's 0-8 s window:
	// utilization above 50% requires fine-granularity throttling.
	if !(sweep[0].Ratio > 1 && sweep[len(sweep)-1].Ratio < 1) {
		t.Errorf("ratio should cross 1 within the sweep: %.2f .. %.2f",
			sweep[0].Ratio, sweep[len(sweep)-1].Ratio)
	}
}

func TestThrottleValidation(t *testing.T) {
	// A drive already inside the envelope has nothing to throttle
	// (15,000 RPM is the calibrated envelope point itself).
	e := ThrottleExperiment{Drive: thermal.ReferenceDrive, RPM: 15000, Mode: VCMOnly}
	if err := e.Validate(); err == nil {
		t.Error("within-envelope drive should be rejected")
	}
	// VCM-only cannot help a drive whose VCM-off state is still too hot.
	e = ThrottleExperiment{Drive: thermal.ReferenceDrive, RPM: 37001, Mode: VCMOnly}
	if err := e.Validate(); err == nil {
		t.Error("VCM-only at 37001 RPM should be rejected (paper: 53.04 C with VCM off)")
	}
	// Bad dual-speed configuration.
	e = Figure7b()
	e.LowRPM = e.RPM + 1
	if err := e.Validate(); err == nil {
		t.Error("low speed above high speed should be rejected")
	}
	// Bad t_cool.
	if _, err := Figure7a().Ratio(0); err == nil {
		t.Error("zero t_cool should be rejected")
	}
}

// buildDTMDisk assembles a 2.6" single-platter disk at an average-case speed.
func buildDTMDisk(t testing.TB, rpm units.RPM) (*disksim.Disk, *thermal.Model) {
	t.Helper()
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		t.Fatal(err)
	}
	d, err := disksim.New(disksim.Config{Layout: layout, RPM: rpm})
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.New(geom)
	if err != nil {
		t.Fatal(err)
	}
	return d, th
}

// dtmWorkload builds a random workload long enough to heat the drive.
func dtmWorkload(t testing.TB, total int64, n int, rate float64) []disksim.Request {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	reqs := make([]disksim.Request, n)
	now := 0.0
	for i := range reqs {
		now += rng.ExpFloat64() / rate
		reqs[i] = disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 64),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		}
	}
	return reqs
}

func TestControllerKeepsEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disk, th := buildDTMDisk(t, 24534)
	ctl := Controller{Disk: disk, Thermal: th, Mode: VCMOnly}
	reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 20000, 120)
	res, err := ctl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.MaxAirTemp) > float64(thermal.Envelope)+0.1 {
		t.Errorf("controller let the drive reach %.2f C", float64(res.MaxAirTemp))
	}
	if len(res.Completions) != len(reqs) {
		t.Errorf("served %d of %d", len(res.Completions), len(reqs))
	}
	if res.MeanResponseMillis <= 0 {
		t.Error("no response statistics")
	}
}

func TestControllerBeatsEnvelopeDesignWhenCool(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	// A light workload never nears the envelope, so the average-case
	// 24,534 RPM drive with DTM strictly beats the 15,020 RPM
	// envelope-design drive — the paper's motivation for average-case
	// design.
	fast, th := buildDTMDisk(t, 24534)
	ctl := Controller{Disk: fast, Thermal: th, Mode: VCMOnly}
	reqs := dtmWorkload(t, fast.Layout().TotalSectors(), 4000, 40)
	withDTM, err := ctl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := buildDTMDisk(t, 15020)
	comps, err := slow.Simulate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, c := range comps {
		sum += c.Response()
	}
	slowMean := float64(sum) / float64(len(comps)) / float64(time.Millisecond)
	if withDTM.MeanResponseMillis >= slowMean {
		t.Errorf("DTM drive (%.2f ms) not faster than envelope design (%.2f ms)",
			withDTM.MeanResponseMillis, slowMean)
	}
	if float64(withDTM.MaxAirTemp) > float64(thermal.Envelope)+0.1 {
		t.Errorf("DTM run exceeded the envelope: %v", withDTM.MaxAirTemp)
	}
}

func TestControllerConfigErrors(t *testing.T) {
	if _, err := (&Controller{}).Run(nil); err == nil {
		t.Error("empty controller should be rejected")
	}
	disk, th := buildDTMDisk(t, 24534)
	bad := Controller{Disk: disk, Thermal: th, Mode: VCMAndRPM, LowRPM: 30000}
	if _, err := bad.Run(nil); err == nil {
		t.Error("low RPM above service RPM should be rejected")
	}
}

func TestSlackRampBoostsAndStaysCool(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disk, th := buildDTMDisk(t, 15020)
	ramp := SlackRamp{Disk: disk, Thermal: th, BoostRPM: 24534}
	reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 6000, 60)
	res, err := ramp.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 || res.BoostedTime == 0 {
		t.Error("ramp never boosted on a light workload")
	}
	if float64(res.MaxAirTemp) > float64(thermal.Envelope)+0.1 {
		t.Errorf("ramp exceeded the envelope: %v", res.MaxAirTemp)
	}
}

func TestSlackRampConfigErrors(t *testing.T) {
	if _, err := (&SlackRamp{}).Run(nil); err == nil {
		t.Error("empty ramp should be rejected")
	}
	disk, th := buildDTMDisk(t, 20000)
	bad := SlackRamp{Disk: disk, Thermal: th, BoostRPM: 15000}
	if _, err := bad.Run(nil); err == nil {
		t.Error("boost below base should be rejected")
	}
}

func TestDefaultTCools(t *testing.T) {
	tc := DefaultTCools()
	if len(tc) != 16 || tc[0] != 500*time.Millisecond || tc[len(tc)-1] != 8*time.Second {
		t.Errorf("unexpected grid: %v", tc)
	}
}

func TestOffTrackModelShape(t *testing.T) {
	m := OffTrackModel{}
	if p := m.ProbAt(thermal.Envelope); p != 0 {
		t.Errorf("at the envelope: %v, want 0", p)
	}
	if p := m.ProbAt(thermal.Envelope - 10); p != 0 {
		t.Errorf("below the envelope: %v, want 0", p)
	}
	half := m.ProbAt(thermal.Envelope + 5)
	full := m.ProbAt(thermal.Envelope + 10)
	over := m.ProbAt(thermal.Envelope + 50)
	if half <= 0 || half >= full {
		t.Errorf("probability not rising: %v then %v", half, full)
	}
	if full != 0.25 || over != 0.25 {
		t.Errorf("saturation wrong: %v, %v (want 0.25)", full, over)
	}
}

// TestOffTrackRetriesAboveEnvelope runs a drive past the envelope without
// DTM and shows the off-track mechanism degrading service — the paper's
// reliability argument in performance terms.
func TestOffTrackRetriesAboveEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.New(geom)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the transient at a hot steady state (no controller): 24,534 RPM
	// worst case is 48.5 C — 3.3 C over the envelope.
	hot := th.SteadyState(thermal.WorstCase(24534))
	tr := th.NewTransient(hot)
	model := OffTrackModel{}
	d, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534, CacheBytes: -1,
		RetryProb: model.Bind(tr)})
	if err != nil {
		t.Fatal(err)
	}
	reqs := dtmWorkload(t, layout.TotalSectors(), 3000, 80)
	if _, err := d.Simulate(reqs); err != nil {
		t.Fatal(err)
	}
	if d.Retries() == 0 {
		t.Error("an over-envelope drive should suffer off-track retries")
	}
	// The retry rate should be near ProbAt(48.5 C).
	want := model.ProbAt(hot.Air)
	got := float64(d.Retries()) / 3000
	if got < want/2 || got > want*2 {
		t.Errorf("retry rate %.3f, expected near %.3f", got, want)
	}
}

func TestSeekDutyRunsCooler(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	reqs := dtmWorkload(t, 1<<24, 12000, 130)
	run := func(seekDuty bool) units.Celsius {
		disk, th := buildDTMDisk(t, 24534)
		for i := range reqs {
			reqs[i].LBN %= disk.Layout().TotalSectors() - 64
		}
		ctl := Controller{Disk: disk, Thermal: th, Mode: VCMOnly, SeekDuty: seekDuty}
		res, err := ctl.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxAirTemp
	}
	conservative := run(false)
	refined := run(true)
	if refined >= conservative {
		t.Errorf("seek-proportional duty (%v) should run cooler than worst-case duty (%v)",
			refined, conservative)
	}
}
