package dtm

import (
	"testing"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/scaling"
	"repro/internal/thermal"
	"repro/internal/units"
)

// buildMirror builds two identical average-case members.
func buildMirror(t *testing.T, rpm units.RPM) ([2]*disksim.Disk, [2]*thermal.Model) {
	t.Helper()
	var disks [2]*disksim.Disk
	var models [2]*thermal.Model
	for i := 0; i < 2; i++ {
		d, th := buildDTMDisk(t, rpm)
		disks[i], models[i] = d, th
	}
	return disks, models
}

func TestMirrorConfigErrors(t *testing.T) {
	if _, err := (&MirrorPolicy{}).Run(nil); err == nil {
		t.Error("empty mirror should be rejected")
	}
}

func TestMirrorServesEverythingWithinEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disks, models := buildMirror(t, 24534)
	// Warm start near the envelope so steering actually engages.
	warm := models[0].SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.6, Ambient: thermal.DefaultAmbient})
	p := MirrorPolicy{Disks: disks, Thermal: models, Initial: &warm}
	reqs := dtmWorkload(t, disks[0].Layout().TotalSectors(), 20000, 160)
	res, err := p.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads+res.Writes != len(reqs) {
		t.Errorf("served %d of %d", res.Reads+res.Writes, len(reqs))
	}
	// The policy holds both members near the envelope: allow the guard
	// band plus the per-service overshoot.
	if float64(res.MaxAirTemp) > float64(thermal.Envelope)+0.2 {
		t.Errorf("mirror member reached %.2f C", float64(res.MaxAirTemp))
	}
	if res.MeanResponseMillis <= 0 {
		t.Error("no response statistics")
	}
}

func TestMirrorSwitchesUnderSustainedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disks, models := buildMirror(t, 24534)
	warm := models[0].SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.62, Ambient: thermal.DefaultAmbient})
	p := MirrorPolicy{Disks: disks, Thermal: models, Initial: &warm}
	// A read-heavy sustained stream: the active member heats, the standby
	// cools, roles alternate.
	reqs := dtmWorkload(t, disks[0].Layout().TotalSectors(), 40000, 170)
	for i := range reqs {
		reqs[i].Write = i%10 == 0 // 90% reads
	}
	res, err := p.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches == 0 {
		t.Error("sustained near-envelope load should force read steering to switch")
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Errorf("mix lost: %d reads, %d writes", res.Reads, res.Writes)
	}
}

func TestMirrorWriteGatesOnSlowerMember(t *testing.T) {
	disks, models := buildMirror(t, 15020)
	// Pre-position member 1's head far away by serving one distant read.
	far := disks[1].Layout().TotalSectors() - 100
	if _, err := disks[1].Serve(disksim.Request{ID: 999, LBN: far, Sectors: 8}); err != nil {
		t.Fatal(err)
	}
	p := MirrorPolicy{Disks: disks, Thermal: models}
	res, err := p.Run([]disksim.Request{
		{ID: 1, Arrival: time.Second, LBN: 0, Sectors: 8, Write: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != 1 {
		t.Fatalf("writes = %d", res.Writes)
	}
	// Both disks must have served it.
	if disks[0].Served() != 1 || disks[1].Served() != 2 {
		t.Errorf("served counts: %d, %d", disks[0].Served(), disks[1].Served())
	}
}

func TestMirrorMismatchedMembersRejected(t *testing.T) {
	d0, th0 := buildDTMDisk(t, 24534)
	d1, th1 := mismatchedDisk(t)
	p := MirrorPolicy{Disks: [2]*disksim.Disk{d0, d1}, Thermal: [2]*thermal.Model{th0, th1}}
	if _, err := p.Run(nil); err == nil {
		t.Error("mismatched members should be rejected")
	}
}

// mismatchedDisk builds a member with a different capacity (2002 densities).
func mismatchedDisk(t *testing.T) (*disksim.Disk, *thermal.Model) {
	t.Helper()
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2002)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		t.Fatal(err)
	}
	d, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.New(geom)
	if err != nil {
		t.Fatal(err)
	}
	return d, th
}
