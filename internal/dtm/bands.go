package dtm

import (
	"time"

	"repro/internal/units"
)

// Band is an engage/release hysteresis pair for one threshold stage,
// expressed as margins below the stage's limit temperature: the stage
// becomes eligible to engage once the air is within Engage degrees of the
// limit (air >= limit - Engage) and, once it has acted, cools the drive to
// Release degrees below the limit (air <= limit - Release) before normal
// operation resumes. Splitting the two lines — Release wider than Engage —
// is what keeps a stage from re-engaging the instant it lets go (the 3 °C
// re-arm idiom: alert at the threshold, suppress until well below it).
//
// The zero Band means "unset": each controller substitutes its own
// defaults, so existing configurations keep their historic behaviour
// bit-for-bit.
type Band struct {
	Engage  units.Celsius
	Release units.Celsius
}

// isZero reports an unset band.
func (b Band) isZero() bool { return b.Engage == 0 && b.Release == 0 }

// orDefault resolves an unset band against stage defaults. A band with only
// one margin set keeps the other default, so callers can widen just the
// release line.
func (b Band) orDefault(engage, release units.Celsius) Band {
	if b.Engage == 0 {
		b.Engage = engage
	}
	if b.Release == 0 {
		b.Release = release
	}
	return b
}

// engageAt is the temperature at which the stage engages.
func (b Band) engageAt(limit units.Celsius) units.Celsius { return limit - b.Engage }

// releaseAt is the temperature the stage cools the drive to before
// releasing.
func (b Band) releaseAt(limit units.Celsius) units.Celsius { return limit - b.Release }

// overTracker integrates the sim time a drive spends at or above a
// threshold temperature, from the discrete observations a controller
// already makes. Consecutive samples are joined by linear interpolation, so
// a segment that crosses the threshold contributes exactly the interpolated
// fraction above it. It is a pure observer: it never feeds back into
// control decisions, so wiring it into an existing controller cannot change
// that controller's output.
type overTracker struct {
	limit   units.Celsius
	started bool
	lastAt  time.Duration
	lastT   units.Celsius
	over    time.Duration
}

// observe records one (time, temperature) sample. Out-of-order or
// same-instant samples only refresh the latest temperature.
func (o *overTracker) observe(at time.Duration, t units.Celsius) {
	if !o.started {
		o.started, o.lastAt, o.lastT = true, at, t
		return
	}
	d := at - o.lastAt
	if d <= 0 {
		o.lastT = t
		return
	}
	a, b := float64(o.lastT), float64(t)
	lim := float64(o.limit)
	switch {
	case a >= lim && b >= lim:
		o.over += d
	case a < lim && b < lim:
		// Below throughout.
	case b >= lim:
		// Rising crossing: above for the trailing fraction.
		o.over += time.Duration((b - lim) / (b - a) * float64(d))
	default:
		// Falling crossing: above for the leading fraction.
		o.over += time.Duration((a - lim) / (a - b) * float64(d))
	}
	o.lastAt, o.lastT = at, t
}

// flapTracker counts stage engagements that land within a re-arm window of
// the same stage's previous release — the oscillation signature a shared
// hysteresis band produces when one stage's release line sits inside
// another stage's active region. One tracker per stage; flaps are a
// stability metric, never a control input.
type flapTracker struct {
	window      time.Duration
	seen        bool
	lastRelease time.Duration
	flaps       int
}

// engage marks a stage engagement at the given sim time.
func (f *flapTracker) engage(at time.Duration) {
	if f.seen && at-f.lastRelease <= f.window {
		f.flaps++
	}
}

// release marks the stage letting go at the given sim time.
func (f *flapTracker) release(at time.Duration) { f.seen, f.lastRelease = true, at }

// defaultFlapWindow is the re-arm window within which a fresh engagement
// counts as a flap: comfortably longer than a spin transition, far shorter
// than a deliberate cooling episode.
const defaultFlapWindow = 5 * time.Second
