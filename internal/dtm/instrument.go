package dtm

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// Instruments is the DTM layer's metric handle set, shared by all four
// controllers: the internal-air-temperature gauge the policies regulate,
// its peak, and the counters for each control action (throttle episodes and
// their accumulated pause time, spindle-speed transitions, emergency
// stage engagements). Controllers carry a nil *Instruments by default, and
// every hook below is a single nil branch then — the disabled path costs
// nothing and allocates nothing.
type Instruments struct {
	airTemp     *obs.Gauge   // current internal air temperature, C
	maxAirTemp  *obs.Gauge   // peak air temperature (order-free Max)
	throttles   *obs.Counter // throttle episodes entered
	throttledNs *obs.Counter // accumulated throttle pause, ns
	transitions *obs.Counter // spindle-speed transitions (ramp/DRPM/steps)
	offlines    *obs.Counter // emergency stage-3 spin-downs

	earlyThrottles  *obs.Counter // predictive-stage pauses (before the limit)
	predErrSamples  *obs.Counter // one-step-ahead extrapolations scored
	predErrMilliC   *obs.Counter // accumulated |prediction error|, milli-°C
	predErrPeakMilC *obs.Gauge   // worst |prediction error| seen, milli-°C
}

// NewInstruments registers the DTM metric set on reg, labelled with the
// controlling policy plus any extra alternating key/value labels. A nil
// registry returns nil — the disabled state.
func NewInstruments(reg *obs.Registry, policy string, labels ...string) *Instruments {
	if reg == nil {
		return nil
	}
	l := append([]string{"policy", policy}, labels...)
	return &Instruments{
		airTemp:     reg.Gauge("dtm_air_temp_celsius", l...),
		maxAirTemp:  reg.Gauge("dtm_air_temp_peak_celsius", l...),
		throttles:   reg.Counter("dtm_throttle_events_total", l...),
		throttledNs: reg.Counter("dtm_throttled_ns_total", l...),
		transitions: reg.Counter("dtm_rpm_transitions_total", l...),
		offlines:    reg.Counter("dtm_offline_events_total", l...),

		earlyThrottles:  reg.Counter("dtm_predictive_early_throttles_total", l...),
		predErrSamples:  reg.Counter("dtm_prediction_error_samples_total", l...),
		predErrMilliC:   reg.Counter("dtm_prediction_abs_error_millicelsius_total", l...),
		predErrPeakMilC: reg.Gauge("dtm_prediction_abs_error_peak_millicelsius", l...),
	}
}

// noteTemp tracks the air temperature (last value and peak).
func (ins *Instruments) noteTemp(t units.Celsius) {
	if ins == nil {
		return
	}
	ins.airTemp.Set(float64(t))
	ins.maxAirTemp.Max(float64(t))
}

// throttle counts one throttle episode of the given pause length.
func (ins *Instruments) throttle(pause time.Duration) {
	if ins == nil {
		return
	}
	ins.throttles.Inc()
	ins.throttledNs.AddDuration(pause)
}

// transition counts one spindle-speed change.
func (ins *Instruments) transition() {
	if ins == nil {
		return
	}
	ins.transitions.Inc()
}

// offline counts one emergency spin-down of the given length.
func (ins *Instruments) offline(pause time.Duration) {
	if ins == nil {
		return
	}
	ins.offlines.Inc()
	ins.throttledNs.AddDuration(pause)
}

// earlyThrottle counts one predictive-stage pause of the given length. The
// pause time folds into the shared throttled-ns total so the combined
// counter stays comparable across policies.
func (ins *Instruments) earlyThrottle(pause time.Duration) {
	if ins == nil {
		return
	}
	ins.earlyThrottles.Inc()
	ins.throttledNs.AddDuration(pause)
}

// predictionError scores one one-step-ahead extrapolation against the
// measured temperature. The absolute error accumulates in milli-°C (mean =
// total / samples); the gauge tracks the worst single miss.
func (ins *Instruments) predictionError(absErrC float64) {
	if ins == nil {
		return
	}
	m := int64(absErrC * 1000)
	ins.predErrSamples.Inc()
	ins.predErrMilliC.Add(m)
	ins.predErrPeakMilC.Max(float64(m))
}

// throttleSpan emits a DTM control-episode span (throttle pause, offline
// window, or RPM transition) when the engine has a tracer attached.
func throttleSpan(eng *sim.Engine, name string, start, end time.Duration, air units.Celsius) {
	if eng == nil {
		return
	}
	t := eng.Tracer()
	if t == nil {
		return
	}
	t.Record(obs.Span{
		Name:  name,
		Start: start,
		End:   end,
		Attrs: []obs.Attr{obs.AttrFloat("air_c", float64(air))},
	})
}
