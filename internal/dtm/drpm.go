package dtm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/disksim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// DRPM is a multi-speed policy in the style of the authors' earlier DRPM
// work (ISCA'03), which the paper cites as the enabling mechanism for
// full-granularity thermal control: the disk services requests at any of
// several speed levels, and the controller walks the level ladder — down
// when the internal air nears the envelope, up when thermal slack opens.
// Unlike the two-speed throttling of Figure 6(b), requests keep flowing at
// reduced speed instead of stopping entirely.
type DRPM struct {
	// Disk services the requests; its initial speed must be one of Levels.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// Levels are the available spindle speeds, any order (sorted on Run).
	Levels []units.RPM

	// StepDownAt is the air temperature that forces a step down
	// (0 = envelope - 0.05).
	StepDownAt units.Celsius

	// StepUpBelow is the air temperature that allows a step up
	// (0 = envelope - 2).
	StepUpBelow units.Celsius

	// Ambient is the external temperature (0 = default).
	Ambient units.Celsius

	// Transition is the time one level change takes (0 = 2 s).
	Transition time.Duration

	// Initial optionally warm-starts the thermal state.
	Initial *thermal.State
}

// DRPMResult summarises a run.
type DRPMResult struct {
	MeanResponseMillis float64
	P95ResponseMillis  float64
	MaxAirTemp         units.Celsius

	// Transitions counts level changes; TimeAtLevel maps each speed to
	// the busy+idle time spent there.
	Transitions int
	TimeAtLevel map[units.RPM]time.Duration

	Elapsed time.Duration
}

func (p *DRPM) stepDownAt() units.Celsius {
	if p.StepDownAt == 0 {
		return thermal.Envelope - 0.05
	}
	return p.StepDownAt
}

func (p *DRPM) stepUpBelow() units.Celsius {
	if p.StepUpBelow == 0 {
		return thermal.Envelope - 2
	}
	return p.StepUpBelow
}

func (p *DRPM) ambient() units.Celsius {
	if p.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return p.Ambient
}

func (p *DRPM) transition() time.Duration {
	if p.Transition == 0 {
		return 2 * time.Second
	}
	return p.Transition
}

// Run services requests (sorted by arrival) under the level-walking policy.
func (p *DRPM) Run(reqs []disksim.Request) (DRPMResult, error) {
	if p.Disk == nil || p.Thermal == nil {
		return DRPMResult{}, fmt.Errorf("dtm: DRPM needs a disk and a thermal model")
	}
	if len(p.Levels) < 2 {
		return DRPMResult{}, fmt.Errorf("dtm: DRPM needs at least 2 levels, have %d", len(p.Levels))
	}
	levels := append([]units.RPM(nil), p.Levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	level := -1
	for i, l := range levels {
		if l == p.Disk.RPM() {
			level = i
			break
		}
	}
	if level < 0 {
		return DRPMResult{}, fmt.Errorf("dtm: disk speed %v is not a configured level", p.Disk.RPM())
	}

	amb := p.ambient()
	start0 := thermal.Uniform(amb)
	if p.Initial != nil {
		start0 = *p.Initial
	}
	tr := p.Thermal.NewTransient(start0)
	clock := time.Duration(0)

	res := DRPMResult{TimeAtLevel: make(map[units.RPM]time.Duration, len(levels))}
	var sample stats.Sample
	maxT := start0.Air

	advance := func(to time.Duration, duty float64) {
		if to > clock {
			d := to - clock
			tr.Advance(thermal.Load{RPM: levels[level], VCMDuty: duty, Ambient: amb}, d)
			res.TimeAtLevel[levels[level]] += d
			clock = to
		}
		if a := tr.State().Air; a > maxT {
			maxT = a
		}
	}

	for _, r := range reqs {
		start := r.Arrival
		if rt := p.Disk.ReadyTime(); rt > start {
			start = rt
		}
		advance(start, 0)

		// Walk the ladder between requests.
		switch air := tr.State().Air; {
		case air >= p.stepDownAt() && level > 0:
			level--
			res.Transitions++
			clock += p.transition()
			p.Disk.Delay(clock)
			if err := p.Disk.SetRPM(levels[level]); err != nil {
				return DRPMResult{}, err
			}
		case air <= p.stepUpBelow() && level < len(levels)-1:
			level++
			res.Transitions++
			clock += p.transition()
			p.Disk.Delay(clock)
			if err := p.Disk.SetRPM(levels[level]); err != nil {
				return DRPMResult{}, err
			}
		}

		comp, err := p.Disk.Serve(r)
		if err != nil {
			return DRPMResult{}, err
		}
		advance(comp.Finish, 1)
		sample.Add(comp.Response())
		if comp.Finish > res.Elapsed {
			res.Elapsed = comp.Finish
		}
	}

	res.MeanResponseMillis = sample.Mean()
	res.P95ResponseMillis = sample.Percentile(95)
	res.MaxAirTemp = maxT
	return res, nil
}
