package dtm

import (
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// DRPM is a multi-speed policy in the style of the authors' earlier DRPM
// work (ISCA'03), which the paper cites as the enabling mechanism for
// full-granularity thermal control: the disk services requests at any of
// several speed levels, and the controller walks the level ladder — down
// when the internal air nears the envelope, up when thermal slack opens.
// Unlike the two-speed throttling of Figure 6(b), requests keep flowing at
// reduced speed instead of stopping entirely.
type DRPM struct {
	// Disk services the requests; its initial speed must be one of Levels.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// Levels are the available spindle speeds, any order (sorted on Run).
	Levels []units.RPM

	// StepDownAt is the air temperature that forces a step down
	// (0 = envelope - 0.05).
	StepDownAt units.Celsius

	// StepUpBelow is the air temperature that allows a step up
	// (0 = envelope - 2).
	StepUpBelow units.Celsius

	// Ambient is the external temperature (0 = default).
	Ambient units.Celsius

	// Transition is the time one level change takes (0 = 2 s).
	Transition time.Duration

	// Initial optionally warm-starts the thermal state.
	Initial *thermal.State

	// SampleEvery, when positive, adds a periodic temperature-observation
	// tick on the event-engine clock during RunStream (zero = off).
	SampleEvery time.Duration

	// Ins is the optional metric handle set (NewInstruments); nil — the
	// default — keeps the control loop observation-free.
	Ins *Instruments
}

// DRPMResult summarises a run.
type DRPMResult struct {
	MeanResponseMillis float64
	P95ResponseMillis  float64
	MaxAirTemp         units.Celsius

	// Transitions counts level changes; TimeAtLevel maps each speed to
	// the busy+idle time spent there.
	Transitions int
	TimeAtLevel map[units.RPM]time.Duration

	Elapsed time.Duration
}

func (p *DRPM) stepDownAt() units.Celsius {
	if p.StepDownAt == 0 {
		return thermal.Envelope - 0.05
	}
	return p.StepDownAt
}

func (p *DRPM) stepUpBelow() units.Celsius {
	if p.StepUpBelow == 0 {
		return thermal.Envelope - 2
	}
	return p.StepUpBelow
}

func (p *DRPM) ambient() units.Celsius {
	if p.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return p.Ambient
}

func (p *DRPM) transition() time.Duration {
	if p.Transition == 0 {
		return 2 * time.Second
	}
	return p.Transition
}

// Run services requests (sorted by arrival) under the level-walking policy.
// It is the batch wrapper over RunStream, with the response percentile
// computed exactly from the retained responses rather than P²-estimated.
func (p *DRPM) Run(reqs []disksim.Request) (DRPMResult, error) {
	var sample stats.Sample
	res, err := p.RunStream(sim.NewEngine(), sim.FromSlice(reqs),
		sim.SinkFunc[disksim.Completion](func(c disksim.Completion) { sample.Add(c.Response()) }))
	if err != nil {
		return DRPMResult{}, err
	}
	res.MeanResponseMillis = sample.Mean()
	res.P95ResponseMillis = sample.Percentile(95)
	return res, nil
}
