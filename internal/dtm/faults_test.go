package dtm

import (
	"testing"
	"time"

	"repro/internal/disksim"
	"repro/internal/reliability"
	"repro/internal/thermal"
	"repro/internal/units"
)

func TestThermalFaultsRetriesScaleWithTemperature(t *testing.T) {
	count := func(temp units.Celsius) (retries, unrec int) {
		f := NewThermalFaults(OffTrackModel{}, reliability.Default(), BindSteady(temp), 42)
		for i := 0; i < 4000; i++ {
			af := f.Access(time.Duration(i)*time.Millisecond, disksim.Request{})
			retries += af.Retries
			if af.Unrecoverable {
				unrec++
			}
		}
		return retries, unrec
	}
	coolR, coolU := count(thermal.Envelope - 5)
	if coolR != 0 || coolU != 0 {
		t.Errorf("below the envelope: %d retries, %d unrecoverable; want none", coolR, coolU)
	}
	warmR, _ := count(thermal.Envelope + 3)
	hotR, hotU := count(thermal.Envelope + 10)
	if warmR == 0 || hotR <= warmR {
		t.Errorf("retries should rise with temperature: %d at +3C, %d at +10C", warmR, hotR)
	}
	// At saturation (p = 0.25) a 4-retry run followed by a fifth off-track
	// draw has probability 0.25^5 ~ 1e-3: a few unrecoverables in 4000.
	if hotU == 0 {
		t.Error("saturated off-track probability never produced an unrecoverable sector")
	}
}

func TestThermalFaultsReproducible(t *testing.T) {
	draw := func() []disksim.AccessFault {
		f := NewThermalFaults(OffTrackModel{}, reliability.Default(),
			BindSteady(thermal.Envelope+8), 7)
		f.TimeAcceleration = 1e6
		out := make([]disksim.AccessFault, 2000)
		for i := range out {
			out[i] = f.Access(time.Duration(i)*5*time.Millisecond, disksim.Request{})
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged with identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed diverges somewhere.
	g := NewThermalFaults(OffTrackModel{}, reliability.Default(),
		BindSteady(thermal.Envelope+8), 8)
	g.TimeAcceleration = 1e6
	diverged := false
	for i := range a {
		if g.Access(time.Duration(i)*5*time.Millisecond, disksim.Request{}) != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical decision streams")
	}
}

func TestThermalFaultsDrawDiskFailure(t *testing.T) {
	f := NewThermalFaults(OffTrackModel{}, reliability.Default(),
		BindSteady(thermal.Envelope+10), 3)
	// Accelerate so each 10 ms gap carries ~12 days of hazard exposure.
	f.TimeAcceleration = 1e8
	failed := false
	for i := 0; i < 50000 && !failed; i++ {
		failed = f.Access(time.Duration(i)*10*time.Millisecond, disksim.Request{}).DiskFailure
	}
	if !failed {
		t.Error("accelerated hazard never produced a disk failure")
	}
}

func TestEscalationLadderBoundsTemperature(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disk, th := buildDTMDisk(t, 24534)
	// Warm-start at the 24,534 RPM worst case (48.5 C, past the envelope)
	// so the ladder must engage immediately.
	hot := th.SteadyState(thermal.WorstCase(24534))
	esc := Escalation{
		Disk:    disk,
		Thermal: th,
		Levels:  []units.RPM{24534, 21000, 18000},
		Initial: &hot,
	}
	reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 6000, 120)
	res, err := esc.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != len(reqs) {
		t.Fatalf("served %d of %d", len(res.Completions), len(reqs))
	}
	if res.StepDowns == 0 {
		t.Error("a past-envelope start must trigger at least one RPM step-down")
	}
	_, _, offlineAt := esc.stageTemps()
	if res.MaxAirTemp > offlineAt+1 {
		t.Errorf("ladder let the drive reach %.2f C (offline stage at %.2f C)",
			float64(res.MaxAirTemp), float64(offlineAt))
	}
	if res.MeanResponseMillis <= 0 {
		t.Error("no response statistics")
	}
}

func TestEscalationWithFaultsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	run := func() EscalationResult {
		disk, th := buildDTMDisk(t, 24534)
		hot := th.SteadyState(thermal.WorstCase(24534))
		esc := Escalation{
			Disk:    disk,
			Thermal: th,
			Levels:  []units.RPM{24534, 21000},
			Initial: &hot,
			Faults:  NewThermalFaults(OffTrackModel{}, reliability.Default(), nil, 99),
		}
		res, err := esc.Run(dtmWorkload(t, disk.Layout().TotalSectors(), 3000, 120))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Retries != b.Retries || a.Remaps != b.Remaps ||
		len(a.Completions) != len(b.Completions) || a.Elapsed != b.Elapsed {
		t.Fatalf("seeded runs diverged: %d/%d retries, %d/%d remaps, %d/%d completions",
			a.Retries, b.Retries, a.Remaps, b.Remaps, len(a.Completions), len(b.Completions))
	}
	for i := range a.Completions {
		if a.Completions[i] != b.Completions[i] {
			t.Fatalf("completion %d differs between identically seeded runs", i)
		}
	}
	if a.Retries == 0 {
		t.Error("a past-envelope run with faults injected should see retries")
	}
}

func TestEscalationRejectsBadLevels(t *testing.T) {
	disk, th := buildDTMDisk(t, 24534)
	esc := Escalation{Disk: disk, Thermal: th, Levels: []units.RPM{20000}}
	if _, err := esc.Run(nil); err == nil {
		t.Error("level 0 != service speed should be rejected")
	}
	esc.Levels = []units.RPM{24534, 25000}
	if _, err := esc.Run(nil); err == nil {
		t.Error("ascending levels should be rejected")
	}
	if _, err := (&Escalation{}).Run(nil); err == nil {
		t.Error("empty escalation should be rejected")
	}
}

func TestEmergencyStageString(t *testing.T) {
	want := map[EmergencyStage]string{
		StageNormal: "normal", StageRPMStep: "rpm-step",
		StageThrottle: "throttle", StageOffline: "offline",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d: %q", int(s), s.String())
		}
	}
	if EmergencyStage(9).String() == "" {
		t.Error("unknown stage should print")
	}
}
