package dtm

import (
	"time"

	"repro/internal/thermal"
	"repro/internal/units"
)

// OffTrackModel turns temperature into an off-track-retry probability — the
// paper's motivating failure mechanism ("high temperatures can cause
// off-track errors due to thermal tilt of the disk stack and actuator") made
// operational. At or below the envelope the probability is zero; above it,
// it rises linearly to MaxProb at Envelope+Span as the stack's thermal tilt
// eats the track misregistration budget.
type OffTrackModel struct {
	// Envelope is the onset temperature (0 = thermal.Envelope).
	Envelope units.Celsius

	// Span is the temperature rise over which the probability saturates
	// (0 = 10 C).
	Span units.Celsius

	// MaxProb is the saturated per-access retry probability (0 = 0.25).
	MaxProb float64
}

func (m OffTrackModel) envelope() units.Celsius {
	if m.Envelope == 0 {
		return thermal.Envelope
	}
	return m.Envelope
}

func (m OffTrackModel) span() units.Celsius {
	if m.Span == 0 {
		return 10
	}
	return m.Span
}

func (m OffTrackModel) maxProb() float64 {
	if m.MaxProb == 0 {
		return 0.25
	}
	return m.MaxProb
}

// ProbAt returns the per-access retry probability at a temperature.
func (m OffTrackModel) ProbAt(t units.Celsius) float64 {
	over := float64(t - m.envelope())
	if over <= 0 {
		return 0
	}
	f := over / float64(m.span())
	if f > 1 {
		f = 1
	}
	return f * m.maxProb()
}

// Bind returns a disksim.Config.RetryProb callback that reads the current
// air temperature from a live thermal transient. The caller must keep the
// transient's clock in step with the disk's (the DTM controllers do).
//
// Deprecated: Bind feeds the single-retry RetryProb path. Build a
// ThermalFaults injector instead — it draws multi-retry runs from this same
// model and adds the unrecoverable-sector and disk-failure mechanisms.
func (m OffTrackModel) Bind(tr *thermal.Transient) func(time.Duration) float64 {
	return func(time.Duration) float64 {
		return m.ProbAt(tr.State().Air)
	}
}
