package dtm

// Predictive-path benchmarks (results in BENCH_dtm.json): the slope
// predictor's per-sample cost and the full predictive controller streaming a
// seeded workload. allocs/op is the contract under test — the predictor ring
// never allocates after construction, and the controller's allocation count
// is its fixed setup (engine, transient, rings, closures), independent of
// how many requests stream through it. A per-request allocation would grow
// BenchmarkPredictiveStream's allocs/op with the workload length and trip
// the exact benchdiff gate.

import (
	"testing"
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/units"
)

// BenchmarkPredictorObserve measures one observe-and-predict step on a full
// ring: the cost the streaming controller pays at every thermal sample.
// Zero allocs/op, exactly.
func BenchmarkPredictorObserve(b *testing.B) {
	p := NewPredictor(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		p.Observe(at, units.Celsius(40+float64(i%100)*0.01))
		p.TimeToLimit(thermal.Envelope)
	}
}

// BenchmarkPredictiveStream runs the full predictive controller over a
// 20000-request seeded workload per iteration, from a warm start that heats
// across the engage band so the predictive stage fires during the measured
// run. allocs/op is the controller's fixed setup cost;
// TestPredictiveSteadyStateZeroAllocs proves it does not scale with the
// request count, and this baseline pins the absolute number.
func BenchmarkPredictiveStream(b *testing.B) {
	template, th := buildDTMDisk(b, 24534)
	warm := th.SteadyState(thermal.WorstCase(24534))
	warm.Air = thermal.Envelope - 4
	reqs := dtmWorkload(b, template.Layout().TotalSectors(), 20000, 120)

	var res PredictiveResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The disk is stateful (head position, clock); rebuild it outside the
		// timed region so every measured iteration is the same seeded run and
		// allocs/op counts only the controller's own setup.
		b.StopTimer()
		disk, _ := buildDTMDisk(b, 24534)
		b.StartTimer()
		ctl := PredictiveController{Disk: disk, Thermal: th, Mode: VCMOnly, Initial: &warm}
		var err error
		res, err = ctl.RunStream(sim.NewEngine(), sim.FromSlice(reqs),
			sim.Discard[disksim.Completion]())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MaxAirTemp), "max-air-C")
	b.ReportMetric(float64(res.EarlyThrottles), "early-throttles")
}
