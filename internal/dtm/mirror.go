package dtm

import (
	"fmt"
	"time"

	"repro/internal/disksim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// MirrorPolicy is the paper's section 5.4 proposal made concrete: a mirrored
// pair where writes propagate to both disks while reads are steered to one
// member at a time; when the active member approaches the envelope, reads
// move to the other member and the hot one cools with its VCM (nearly) idle.
// Both spindles keep turning, so the cooling mirrors Figure 6(a)'s VCM-only
// throttling — but the array never stops serving.
type MirrorPolicy struct {
	// Disks are the two mirror members (same layout, same RPM).
	Disks [2]*disksim.Disk

	// Thermal are the members' thermal models.
	Thermal [2]*thermal.Model

	// SwitchAt is the internal air temperature at which reads leave a
	// member (0 = envelope - 0.05).
	SwitchAt units.Celsius

	// ReturnBelow is the temperature a cooled member must reach before it
	// is eligible again (0 = envelope - 1).
	ReturnBelow units.Celsius

	// Ambient is the external temperature (0 = default).
	Ambient units.Celsius

	// Initial optionally warm-starts both members' thermal state.
	Initial *thermal.State
}

// MirrorResult summarises a steered run.
type MirrorResult struct {
	MeanResponseMillis float64
	P95ResponseMillis  float64

	// MaxAirTemp is the hottest member temperature seen.
	MaxAirTemp units.Celsius

	// Switches counts read-steering role changes.
	Switches int

	// Reads and Writes count the request mix served.
	Reads, Writes int

	// Elapsed is the simulated span.
	Elapsed time.Duration
}

func (p *MirrorPolicy) switchAt() units.Celsius {
	if p.SwitchAt == 0 {
		return thermal.Envelope - 0.05
	}
	return p.SwitchAt
}

func (p *MirrorPolicy) returnBelow() units.Celsius {
	if p.ReturnBelow == 0 {
		return thermal.Envelope - 1
	}
	return p.ReturnBelow
}

func (p *MirrorPolicy) ambient() units.Celsius {
	if p.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return p.Ambient
}

// Run services requests (sorted by arrival) under the steering policy.
// Requests address the mirrored logical space (both disks share the layout).
func (p *MirrorPolicy) Run(reqs []disksim.Request) (MirrorResult, error) {
	if p.Disks[0] == nil || p.Disks[1] == nil || p.Thermal[0] == nil || p.Thermal[1] == nil {
		return MirrorResult{}, fmt.Errorf("dtm: mirror needs two disks and two thermal models")
	}
	if p.Disks[0].Layout().TotalSectors() != p.Disks[1].Layout().TotalSectors() {
		return MirrorResult{}, fmt.Errorf("dtm: mirror members differ in capacity")
	}
	amb := p.ambient()
	start0 := thermal.Uniform(amb)
	if p.Initial != nil {
		start0 = *p.Initial
	}

	var trs [2]*thermal.Transient
	var clocks [2]time.Duration
	for i := range trs {
		trs[i] = p.Thermal[i].NewTransient(start0)
	}
	rpm := [2]units.RPM{p.Disks[0].RPM(), p.Disks[1].RPM()}

	advance := func(i int, to time.Duration, duty float64) {
		if to > clocks[i] {
			trs[i].Advance(thermal.Load{RPM: rpm[i], VCMDuty: duty, Ambient: amb}, to-clocks[i])
			clocks[i] = to
		}
	}

	var res MirrorResult
	var sample stats.Sample
	maxT := start0.Air
	active := 0

	for _, r := range reqs {
		// Let both members' thermal state catch up to this arrival (idle
		// duty for whatever gap they had).
		for i := range trs {
			t := r.Arrival
			if rt := p.Disks[i].ReadyTime(); rt > t {
				t = rt
			}
			advance(i, t, 0)
			if a := trs[i].State().Air; a > maxT {
				maxT = a
			}
		}

		// Steering decision: if the active member is hot and the standby
		// has cooled enough, switch roles.
		if trs[active].State().Air >= p.switchAt() &&
			trs[1-active].State().Air <= p.returnBelow() {
			active = 1 - active
			res.Switches++
		}

		serve := func(i int) (disksim.Completion, error) {
			comp, err := p.Disks[i].Serve(r)
			if err != nil {
				return comp, err
			}
			advance(i, comp.Finish, 1)
			if a := trs[i].State().Air; a > maxT {
				maxT = a
			}
			return comp, nil
		}
		var finish time.Duration
		if r.Write {
			// Writes propagate to both members; the slower one gates
			// the volume completion.
			res.Writes++
			c0, err := serve(0)
			if err != nil {
				return MirrorResult{}, err
			}
			c1, err := serve(1)
			if err != nil {
				return MirrorResult{}, err
			}
			finish = c0.Finish
			if c1.Finish > finish {
				finish = c1.Finish
			}
		} else {
			res.Reads++
			c, err := serve(active)
			if err != nil {
				return MirrorResult{}, err
			}
			finish = c.Finish
		}
		sample.Add(finish - r.Arrival)
		if finish > res.Elapsed {
			res.Elapsed = finish
		}
	}

	res.MeanResponseMillis = sample.Mean()
	res.P95ResponseMillis = sample.Percentile(95)
	res.MaxAirTemp = maxT
	return res, nil
}
