package dtm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/disksim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// EmergencyStage is a rung of the thermal-emergency escalation ladder.
type EmergencyStage int

// The ladder, mildest first. Each stage engages at a higher temperature:
// first the spindle steps down a level (RPM step-down costs throughput but
// keeps serving), then request admission pauses entirely (VCM-off
// throttling, Figure 6(a)), and finally the drive spins down and goes
// offline until it has cooled — the last resort that trades availability
// for the drive's life, per the paper's concluding remark that DTM can be
// used purely to lower temperature and extend life.
const (
	StageNormal EmergencyStage = iota
	StageRPMStep
	StageThrottle
	StageOffline
)

// String implements fmt.Stringer.
func (s EmergencyStage) String() string {
	switch s {
	case StageNormal:
		return "normal"
	case StageRPMStep:
		return "rpm-step"
	case StageThrottle:
		return "throttle"
	case StageOffline:
		return "offline"
	default:
		return fmt.Sprintf("EmergencyStage(%d)", int(s))
	}
}

// Escalation is the closed-loop emergency controller: a drive running
// beyond its envelope-design speed serviced under a three-stage ladder,
// with (optionally) the thermal fault injector wired to the same transient
// so injected off-track errors and the policy that prevents them interact.
type Escalation struct {
	// Disk services the requests; its initial RPM is the service speed.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// Levels are the spindle speeds available to stage 1, descending from
	// the service speed (e.g. 24534, 21000, 18000). The first entry must
	// be the disk's initial RPM.
	Levels []units.RPM

	// StepAt, ThrottleAt and OfflineAt are the stage onset temperatures
	// (0 = envelope, envelope+2, envelope+5).
	StepAt, ThrottleAt, OfflineAt units.Celsius

	// Hysteresis is how far the drive must cool below a stage's onset
	// before the controller de-escalates past it (0 = 1 C).
	Hysteresis units.Celsius

	// Ambient is the external temperature (0 = default 28 C).
	Ambient units.Celsius

	// SpinTransition is one RPM change (0 = 2 s); spin-down/up for the
	// offline stage each cost one transition too.
	SpinTransition time.Duration

	// Initial optionally warm-starts the thermal state.
	Initial *thermal.State

	// Faults, when non-nil, is installed on the disk with its Temp bound
	// to the run's transient — the injected off-track errors then rise
	// and fall with the very temperature the ladder is regulating.
	Faults *ThermalFaults
}

// EscalationResult summarises a run.
type EscalationResult struct {
	Completions []disksim.Completion

	MeanResponseMillis float64
	P95ResponseMillis  float64
	MaxAirTemp         units.Celsius

	// StepDowns, Throttles and Offlines count stage engagements;
	// ThrottledTime and OfflineTime are the paused durations.
	StepDowns, Throttles, Offlines int
	ThrottledTime, OfflineTime     time.Duration

	// Retries and Remaps are the injected-fault outcomes (zero without an
	// injector). DiskFailed is set if the drive died mid-run; the
	// completions then cover only the requests before the failure.
	Retries, Remaps int64
	DiskFailed      bool
	FailedAt        time.Duration

	Elapsed time.Duration
}

func (e *Escalation) stageTemps() (step, throttle, offline units.Celsius) {
	step, throttle, offline = e.StepAt, e.ThrottleAt, e.OfflineAt
	if step == 0 {
		step = thermal.Envelope
	}
	if throttle == 0 {
		throttle = thermal.Envelope + 2
	}
	if offline == 0 {
		offline = thermal.Envelope + 5
	}
	return step, throttle, offline
}

func (e *Escalation) hysteresis() units.Celsius {
	if e.Hysteresis == 0 {
		return 1
	}
	return e.Hysteresis
}

func (e *Escalation) ambientTemp() units.Celsius {
	if e.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return e.Ambient
}

func (e *Escalation) spinTransition() time.Duration {
	if e.SpinTransition == 0 {
		return 2 * time.Second
	}
	return e.SpinTransition
}

// offlineCoolLimit caps one spin-down cooling excursion.
const offlineCoolLimit = 30 * time.Minute

// Run services the requests (sorted by arrival, FCFS) under the ladder.
func (e *Escalation) Run(reqs []disksim.Request) (EscalationResult, error) {
	if e.Disk == nil || e.Thermal == nil {
		return EscalationResult{}, fmt.Errorf("dtm: escalation needs a disk and a thermal model")
	}
	levels := e.Levels
	if len(levels) == 0 {
		levels = []units.RPM{e.Disk.RPM()}
	}
	if levels[0] != e.Disk.RPM() {
		return EscalationResult{}, fmt.Errorf("dtm: level 0 (%v) must be the disk's service speed (%v)", levels[0], e.Disk.RPM())
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] >= levels[i-1] {
			return EscalationResult{}, fmt.Errorf("dtm: levels must descend, got %v after %v", levels[i], levels[i-1])
		}
	}
	stepAt, throttleAt, offlineAt := e.stageTemps()
	amb := e.ambientTemp()
	hys := e.hysteresis()

	start0 := thermal.Uniform(amb)
	if e.Initial != nil {
		start0 = *e.Initial
	}
	tr := e.Thermal.NewTransient(start0)
	clock := time.Duration(0)

	if e.Faults != nil {
		e.Faults.Temp = func(time.Duration) units.Celsius { return tr.State().Air }
		e.Disk.SetFaults(e.Faults)
		defer e.Disk.SetFaults(nil)
	}

	level := 0 // index into levels
	load := func(duty float64) thermal.Load {
		return thermal.Load{RPM: levels[level], VCMDuty: duty, Ambient: amb}
	}
	advance := func(to time.Duration, duty float64) {
		if to > clock {
			tr.Advance(load(duty), to-clock)
			clock = to
		}
	}

	var res EscalationResult
	var sample stats.Sample
	maxT := start0.Air
	note := func() {
		if t := tr.State().Air; t > maxT {
			maxT = t
		}
	}

	for _, r := range reqs {
		startAt := r.Arrival
		if rt := e.Disk.ReadyTime(); rt > startAt {
			startAt = rt
		}
		advance(startAt, 0)
		note()

		// Escalate, hottest stage first; each stage leaves the drive cool
		// enough that the next check falls through.
		air := tr.State().Air
		if air >= offlineAt {
			// Stage 3: spin down and go offline until cooled.
			res.Offlines++
			trans := e.spinTransition()
			pause, _ := tr.AdvanceUntil(
				thermal.Load{RPM: 0, VCMDuty: 0, Ambient: amb},
				offlineCoolLimit,
				func(s thermal.State) bool { return s.Air <= stepAt-hys })
			pause += 2 * trans // spin-down and spin-up
			clock += pause
			res.OfflineTime += pause
			e.Disk.Delay(clock)
			air = tr.State().Air
		}
		if air >= throttleAt {
			// Stage 2: VCM-off throttling at the current spindle speed.
			res.Throttles++
			pause, _ := tr.AdvanceUntil(load(0), coolLimit,
				func(s thermal.State) bool { return s.Air <= throttleAt-hys })
			clock += pause
			res.ThrottledTime += pause
			e.Disk.Delay(clock)
			air = tr.State().Air
		}
		switch {
		case air >= stepAt && level < len(levels)-1:
			// Stage 1: one spindle step down.
			level++
			res.StepDowns++
			clock += e.spinTransition()
			e.Disk.Delay(clock)
			if err := e.Disk.SetRPM(levels[level]); err != nil {
				return EscalationResult{}, err
			}
		case air <= stepAt-hys && level > 0:
			// De-escalate one step once the drive has cooled.
			level--
			clock += e.spinTransition()
			e.Disk.Delay(clock)
			if err := e.Disk.SetRPM(levels[level]); err != nil {
				return EscalationResult{}, err
			}
		}

		comp, err := e.Disk.Serve(r)
		if err != nil {
			if errors.Is(err, disksim.ErrDiskFailed) {
				res.DiskFailed = true
				res.FailedAt = e.Disk.FailedAt()
				break
			}
			return EscalationResult{}, err
		}
		advance(comp.Finish, 1)
		note()
		sample.Add(comp.Response())
		res.Completions = append(res.Completions, comp)
	}

	res.MeanResponseMillis = sample.Mean()
	res.P95ResponseMillis = sample.Percentile(95)
	res.MaxAirTemp = maxT
	res.Retries = e.Disk.Retries()
	res.Remaps = e.Disk.Remapped()
	if n := len(res.Completions); n > 0 {
		res.Elapsed = res.Completions[n-1].Finish - reqs[0].Arrival
	}
	return res, nil
}
