package dtm

import (
	"fmt"
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// EmergencyStage is a rung of the thermal-emergency escalation ladder.
type EmergencyStage int

// The ladder, mildest first. Each stage engages at a higher temperature:
// first the spindle steps down a level (RPM step-down costs throughput but
// keeps serving), then request admission pauses entirely (VCM-off
// throttling, Figure 6(a)), and finally the drive spins down and goes
// offline until it has cooled — the last resort that trades availability
// for the drive's life, per the paper's concluding remark that DTM can be
// used purely to lower temperature and extend life.
const (
	StageNormal EmergencyStage = iota
	StageRPMStep
	StageThrottle
	StageOffline
)

// String implements fmt.Stringer.
func (s EmergencyStage) String() string {
	switch s {
	case StageNormal:
		return "normal"
	case StageRPMStep:
		return "rpm-step"
	case StageThrottle:
		return "throttle"
	case StageOffline:
		return "offline"
	default:
		return fmt.Sprintf("EmergencyStage(%d)", int(s))
	}
}

// Escalation is the closed-loop emergency controller: a drive running
// beyond its envelope-design speed serviced under a three-stage ladder,
// with (optionally) the thermal fault injector wired to the same transient
// so injected off-track errors and the policy that prevents them interact.
type Escalation struct {
	// Disk services the requests; its initial RPM is the service speed.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// Levels are the spindle speeds available to stage 1, descending from
	// the service speed (e.g. 24534, 21000, 18000). The first entry must
	// be the disk's initial RPM.
	Levels []units.RPM

	// StepAt, ThrottleAt and OfflineAt are the stage onset temperatures
	// (0 = envelope, envelope+2, envelope+5).
	StepAt, ThrottleAt, OfflineAt units.Celsius

	// Hysteresis is how far the drive must cool below a stage's onset
	// before the controller de-escalates past it (0 = 1 C). It is the
	// shared fallback band; the per-stage Bands below override it.
	Hysteresis units.Celsius

	// StepBand, ThrottleBand and OfflineBand optionally give each stage its
	// own engage/release margins below that stage's onset temperature, so
	// the rungs re-arm independently instead of sharing one Hysteresis
	// line. A zero band keeps the historic behaviour for that stage:
	// engage exactly at onset, release Hysteresis below it (the offline
	// stage's historic release is StepAt - Hysteresis, deep enough to walk
	// back down the whole ladder).
	StepBand, ThrottleBand, OfflineBand Band

	// OverAt is the threshold the TimeOverThreshold integral measures
	// against (0 = thermal.Envelope).
	OverAt units.Celsius

	// FlapWindow is the re-arm window within which a stage engagement
	// counts as a flap of that stage (0 = 5 s).
	FlapWindow time.Duration

	// Ambient is the external temperature (0 = default 28 C).
	Ambient units.Celsius

	// SpinTransition is one RPM change (0 = 2 s); spin-down/up for the
	// offline stage each cost one transition too.
	SpinTransition time.Duration

	// Initial optionally warm-starts the thermal state.
	Initial *thermal.State

	// Faults, when non-nil, is installed on the disk with its Temp bound
	// to the run's transient — the injected off-track errors then rise
	// and fall with the very temperature the ladder is regulating.
	Faults *ThermalFaults

	// SampleEvery, when positive, adds a periodic temperature-observation
	// tick on the event-engine clock during RunStream (zero = off).
	SampleEvery time.Duration

	// Ins is the optional metric handle set (NewInstruments); nil — the
	// default — keeps the control loop observation-free.
	Ins *Instruments
}

// EscalationResult summarises a run.
type EscalationResult struct {
	Completions []disksim.Completion

	MeanResponseMillis float64
	P95ResponseMillis  float64
	MaxAirTemp         units.Celsius

	// StepDowns, Throttles and Offlines count stage engagements;
	// ThrottledTime and OfflineTime are the paused durations.
	StepDowns, Throttles, Offlines int
	ThrottledTime, OfflineTime     time.Duration

	// Flaps counts stage engagements within FlapWindow of the same stage's
	// previous release; TimeOverThreshold integrates sim time spent at or
	// above OverAt. Both are pure observations of the existing control
	// loop.
	Flaps             int
	TimeOverThreshold time.Duration

	// Retries and Remaps are the injected-fault outcomes (zero without an
	// injector). DiskFailed is set if the drive died mid-run; the
	// completions then cover only the requests before the failure.
	Retries, Remaps int64
	DiskFailed      bool
	FailedAt        time.Duration

	Elapsed time.Duration
}

func (e *Escalation) stageTemps() (step, throttle, offline units.Celsius) {
	step, throttle, offline = e.StepAt, e.ThrottleAt, e.OfflineAt
	if step == 0 {
		step = thermal.Envelope
	}
	if throttle == 0 {
		throttle = thermal.Envelope + 2
	}
	if offline == 0 {
		offline = thermal.Envelope + 5
	}
	return step, throttle, offline
}

func (e *Escalation) hysteresis() units.Celsius {
	if e.Hysteresis == 0 {
		return 1
	}
	return e.Hysteresis
}

// stageLines resolves each stage's engage and release temperatures from the
// per-stage bands, falling back to the shared hysteresis where a band is
// unset. Defaults reproduce the historic single-band ladder exactly:
// engage at stage onset, release Hysteresis below it — except the offline
// stage, whose historic release line is StepAt - Hysteresis (cool enough to
// walk back down the whole ladder in one excursion).
func (e *Escalation) stageLines() (stepEngage, stepRelease, thrEngage, thrRelease, offEngage, offRelease units.Celsius) {
	stepAt, throttleAt, offlineAt := e.stageTemps()
	hys := e.hysteresis()

	sb := e.StepBand
	if sb.isZero() {
		sb = Band{Release: hys}
	}
	tb := e.ThrottleBand
	if tb.isZero() {
		tb = Band{Release: hys}
	}
	stepEngage, stepRelease = sb.engageAt(stepAt), sb.releaseAt(stepAt)
	thrEngage, thrRelease = tb.engageAt(throttleAt), tb.releaseAt(throttleAt)
	if ob := e.OfflineBand; ob.isZero() {
		offEngage, offRelease = offlineAt, stepAt-hys
	} else {
		offEngage, offRelease = ob.engageAt(offlineAt), ob.releaseAt(offlineAt)
	}
	return
}

func (e *Escalation) flapWindow() time.Duration {
	if e.FlapWindow == 0 {
		return defaultFlapWindow
	}
	return e.FlapWindow
}

func (e *Escalation) ambientTemp() units.Celsius {
	if e.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return e.Ambient
}

func (e *Escalation) spinTransition() time.Duration {
	if e.SpinTransition == 0 {
		return 2 * time.Second
	}
	return e.SpinTransition
}

// offlineCoolLimit caps one spin-down cooling excursion.
const offlineCoolLimit = 30 * time.Minute

// Run services the requests (sorted by arrival, FCFS) under the ladder. It
// is the collect-into-slice wrapper over RunStream, with the response
// percentile computed exactly from the retained completions rather than
// P²-estimated.
func (e *Escalation) Run(reqs []disksim.Request) (EscalationResult, error) {
	var collect sim.Appender[disksim.Completion]
	res, err := e.RunStream(sim.NewEngine(), sim.FromSlice(reqs), &collect)
	if err != nil {
		return EscalationResult{}, err
	}
	res.Completions = collect.Items
	var sample stats.Sample
	for _, comp := range res.Completions {
		sample.Add(comp.Response())
	}
	res.MeanResponseMillis = sample.Mean()
	res.P95ResponseMillis = sample.Percentile(95)
	return res, nil
}
