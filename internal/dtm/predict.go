// Predictive DTM: trajectory-based throttling. The reactive controllers in
// this package act only once a threshold is crossed; the predictor below
// regresses the recent temperature history instead and estimates when the
// trajectory will cross the envelope, so the controller can insert a short
// cooling pause *before* the limit — trading a little early throughput for
// the latency spike (and flap risk) a hard-threshold engagement pays. Slope
// regression over a sliding window and "no prediction until the window is
// full / the slope is non-positive" follow ADR-020's predict_throttle_time;
// the split engage/release bands are the 3 °C re-arm idiom (see Band).
package dtm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// defaultPredictWindow is the sliding-window length (samples) the predictor
// regresses over when the controller leaves Window zero.
const defaultPredictWindow = 8

// maxTimeToLimit caps the horizon TimeToLimit reports for near-flat heating
// trajectories, keeping the headroom/slope division inside time.Duration's
// range. The cap preserves (non-strict) monotonicity: a shallower slope
// never predicts an earlier crossing.
const maxTimeToLimit = 1000000 * time.Second

// Predictor estimates time-to-limit by least-squares regression of recent
// (time, temperature) samples over a fixed sliding window. Storage is two
// preallocated rings — observing and predicting never allocate — so the
// streaming controllers can call it per request.
//
// The zero Predictor is not usable; construct with NewPredictor.
type Predictor struct {
	at   []float64 // sample times, seconds on the sim clock
	temp []float64 // air temperatures, °C
	head int       // next write slot
	n    int       // samples held, ≤ len(at)
}

// NewPredictor returns a predictor regressing over the last window samples
// (minimum 2; values below that get the default window of 8).
func NewPredictor(window int) *Predictor {
	if window < 2 {
		window = defaultPredictWindow
	}
	return &Predictor{at: make([]float64, window), temp: make([]float64, window)}
}

// Window is the sliding-window length in samples.
func (p *Predictor) Window() int { return len(p.at) }

// Full reports whether the window holds Window samples — the predictor
// refuses to extrapolate before then.
func (p *Predictor) Full() bool { return p.n == len(p.at) }

// Reset empties the window. Controllers reset after a cooling pause so the
// regression never straddles a discontinuity in the load (and the stage
// cannot re-engage until a fresh window of post-release samples accrues —
// a second, time-domain re-arm on top of the temperature band).
func (p *Predictor) Reset() { p.head, p.n = 0, 0 }

// Observe appends one (time, temperature) sample, evicting the oldest once
// the window is full. A sample at the same instant as the newest replaces
// it instead of duplicating the abscissa.
func (p *Predictor) Observe(at time.Duration, t units.Celsius) {
	sec := at.Seconds()
	if p.n > 0 {
		last := (p.head - 1 + len(p.at)) % len(p.at)
		if p.at[last] == sec {
			p.temp[last] = float64(t)
			return
		}
	}
	p.at[p.head] = sec
	p.temp[p.head] = float64(t)
	p.head = (p.head + 1) % len(p.at)
	if p.n < len(p.at) {
		p.n++
	}
}

// Slope is the least-squares temperature slope over the held samples,
// °C per second. Fewer than two samples (or a degenerate abscissa) give 0.
func (p *Predictor) Slope() float64 {
	if p.n < 2 {
		return 0
	}
	base := (p.head - p.n + len(p.at)) % len(p.at)
	t0 := p.at[base]
	var sx, sy, sxx, sxy float64
	for k := 0; k < p.n; k++ {
		i := (base + k) % len(p.at)
		x := p.at[i] - t0
		y := p.temp[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	nf := float64(p.n)
	den := nf*sxx - sx*sx
	if den <= 0 {
		return 0
	}
	return (nf*sxy - sx*sy) / den
}

// TimeToLimit extrapolates the regressed trajectory to the limit
// temperature. It reports ok=false when the window is not yet full or the
// trajectory is flat or cooling (no finite crossing ahead). The returned
// horizon is never negative: a drive already at or past the limit predicts
// zero, and shallower slopes predict horizons no shorter than steeper ones
// (capped at maxTimeToLimit).
func (p *Predictor) TimeToLimit(limit units.Celsius) (time.Duration, bool) {
	if !p.Full() {
		return 0, false
	}
	slope := p.Slope()
	if slope <= 0 {
		return 0, false
	}
	last := (p.head - 1 + len(p.at)) % len(p.at)
	headroom := float64(limit) - p.temp[last]
	if headroom <= 0 {
		return 0, true
	}
	secs := headroom / slope
	if secs >= maxTimeToLimit.Seconds() {
		return maxTimeToLimit, true
	}
	return time.Duration(secs * float64(time.Second)), true
}

// ExtrapolateTo projects the regression line to the given instant —
// the one-step-ahead prediction whose error the controller tracks. ok is
// false until the window is full.
func (p *Predictor) ExtrapolateTo(at time.Duration) (float64, bool) {
	if !p.Full() {
		return 0, false
	}
	last := (p.head - 1 + len(p.at)) % len(p.at)
	return p.temp[last] + p.Slope()*(at.Seconds()-p.at[last]), true
}

// PredictiveController throttles on the *predicted* thermal trajectory: a
// cooling pause begins when the regressed time-to-limit falls under
// LeadTime, rather than when the envelope is actually reached. A reactive
// watermark stage remains as the hard backstop (mispredictions must not
// breach the envelope), and the two stages carry independent engage/release
// hysteresis bands so releasing one cannot re-trigger the other.
type PredictiveController struct {
	// Disk services the requests. Its RPM is the high (service) speed.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// Mode selects VCM-only or dual-speed throttling (both stages).
	Mode ThrottleMode

	// LowRPM is the cool-down speed for VCMAndRPM.
	LowRPM units.RPM

	// Envelope is the temperature that must never be exceeded
	// (0 = thermal.Envelope).
	Envelope units.Celsius

	// LeadTime is the prediction horizon: the predictive stage engages once
	// the estimated time-to-limit drops to or below it (0 = 4 s).
	LeadTime time.Duration

	// Window is the predictor's sliding-window length in samples (0 = 8).
	Window int

	// Predictive is the early stage's hysteresis band: eligible to engage
	// within Engage of the envelope, cools to Release below it
	// (zero margins default to Engage 3, Release 3.5).
	Predictive Band

	// Reactive is the backstop stage's band (zero margins default to
	// Engage 0.05, Release 0.5 — the watermark Controller's lines).
	Reactive Band

	// Ambient is the external temperature (0 = default 28 C).
	Ambient units.Celsius

	// SpinTransition is the time an RPM change takes in VCMAndRPM mode
	// (default 2 s).
	SpinTransition time.Duration

	// Initial optionally warm-starts the thermal state.
	Initial *thermal.State

	// OverAt is the threshold the TimeOverThreshold integral measures
	// against (0 = thermal.Envelope).
	OverAt units.Celsius

	// FlapWindow is the re-arm window within which a stage engagement
	// counts as a flap of that stage (0 = 5 s).
	FlapWindow time.Duration

	// Faults, when non-nil, is installed on the disk with its Temp bound
	// to the run's transient, as in Escalation.
	Faults *ThermalFaults

	// SampleEvery, when positive, adds a periodic temperature-observation
	// tick on the event-engine clock during RunStream (zero = off).
	SampleEvery time.Duration

	// Ins is the optional metric handle set (NewInstruments); nil — the
	// default — keeps the control loop observation-free.
	Ins *Instruments
}

// PredictiveResult summarises a predictive run.
type PredictiveResult struct {
	// Completions per request, in service order (batch Run only).
	Completions []disksim.Completion

	MeanResponseMillis float64
	P95ResponseMillis  float64
	MaxAirTemp         units.Celsius

	// EarlyThrottles counts predictive-stage pauses; ReactiveThrottles
	// counts backstop engagements (ideally zero — each one is a
	// misprediction the hard stage had to absorb). ThrottledTime is their
	// combined pause duration.
	EarlyThrottles    int
	ReactiveThrottles int
	ThrottledTime     time.Duration

	// Flaps counts stage engagements within FlapWindow of the same stage's
	// previous release; TimeOverThreshold integrates sim time spent at or
	// above OverAt.
	Flaps             int
	TimeOverThreshold time.Duration

	// MeanAbsPredErrC is the mean absolute one-step-ahead prediction error
	// in °C over PredictionSamples extrapolations.
	MeanAbsPredErrC   float64
	PredictionSamples int64

	// Retries and Remaps are the injected-fault outcomes (zero without an
	// injector); DiskFailed/FailedAt mirror Escalation's graceful death.
	Retries, Remaps int64
	DiskFailed      bool
	FailedAt        time.Duration

	Elapsed time.Duration
}

// ThrottleEvents is the combined episode count across both stages — the
// number comparable with the reactive controllers' counters.
func (r PredictiveResult) ThrottleEvents() int { return r.EarlyThrottles + r.ReactiveThrottles }

func (pc *PredictiveController) envelope() units.Celsius {
	if pc.Envelope == 0 {
		return thermal.Envelope
	}
	return pc.Envelope
}

func (pc *PredictiveController) ambient() units.Celsius {
	if pc.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return pc.Ambient
}

func (pc *PredictiveController) leadTime() time.Duration {
	if pc.LeadTime == 0 {
		return 4 * time.Second
	}
	return pc.LeadTime
}

func (pc *PredictiveController) spinTransition() time.Duration {
	if pc.SpinTransition == 0 {
		return 2 * time.Second
	}
	return pc.SpinTransition
}

func (pc *PredictiveController) flapWindow() time.Duration {
	if pc.FlapWindow == 0 {
		return defaultFlapWindow
	}
	return pc.FlapWindow
}

// RunStream services requests pulled lazily from src under the predictive
// policy, pushing completions to sink. The source must yield requests in
// nondecreasing arrival order (FCFS). Steady-state service is allocation
// free: the predictor rings, closures and accumulators are all bound before
// the first admission. A disk failure raised by the fault injector ends the
// stream gracefully, as in Escalation.
func (pc *PredictiveController) RunStream(eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (PredictiveResult, error) {
	if pc.Disk == nil || pc.Thermal == nil {
		return PredictiveResult{}, fmt.Errorf("dtm: predictive controller needs a disk and a thermal model")
	}
	if pc.Mode == VCMAndRPM && (pc.LowRPM <= 0 || pc.LowRPM >= pc.Disk.RPM()) {
		return PredictiveResult{}, fmt.Errorf("dtm: low speed %v must be below service speed %v", pc.LowRPM, pc.Disk.RPM())
	}
	predB := pc.Predictive.orDefault(3, 3.5)
	reactB := pc.Reactive.orDefault(0.05, 0.5)
	if predB.Release < predB.Engage {
		return PredictiveResult{}, fmt.Errorf("dtm: predictive release margin %v inside engage margin %v", predB.Release, predB.Engage)
	}
	if reactB.Release < reactB.Engage {
		return PredictiveResult{}, fmt.Errorf("dtm: reactive release margin %v inside engage margin %v", reactB.Release, reactB.Engage)
	}
	if eng == nil {
		eng = sim.NewEngine()
	}
	highRPM := pc.Disk.RPM()
	env := pc.envelope()
	amb := pc.ambient()
	lead := pc.leadTime()
	predEngageAt := predB.engageAt(env)
	predReleaseAt := predB.releaseAt(env)
	reactEngageAt := reactB.engageAt(env)
	reactReleaseAt := reactB.releaseAt(env)

	idleLoad := thermal.Load{RPM: highRPM, VCMDuty: 0, Ambient: amb}
	busyLoad := thermal.Load{RPM: highRPM, VCMDuty: 1, Ambient: amb}
	coolDown := idleLoad
	if pc.Mode == VCMAndRPM {
		coolDown.RPM = pc.LowRPM
	}
	predCool := func(s thermal.State) bool { return s.Air <= predReleaseAt }
	reactCool := func(s thermal.State) bool { return s.Air <= reactReleaseAt }

	start0 := thermal.Uniform(amb)
	if pc.Initial != nil {
		start0 = *pc.Initial
	}
	tr := pc.Thermal.NewTransient(start0)
	clock := time.Duration(0)

	if pc.Faults != nil {
		pc.Faults.Temp = func(time.Duration) units.Celsius { return tr.State().Air }
		pc.Disk.SetFaults(pc.Faults)
		defer pc.Disk.SetFaults(nil)
	}

	advance := func(to time.Duration, load thermal.Load) {
		if to > clock {
			tr.Advance(load, to-clock)
			clock = to
		}
	}

	pred := NewPredictor(pc.Window)
	overAt := pc.OverAt
	if overAt == 0 {
		overAt = thermal.Envelope
	}
	over := overTracker{limit: overAt}
	predFlaps := flapTracker{window: pc.flapWindow()}
	reactFlaps := flapTracker{window: pc.flapWindow()}

	var res PredictiveResult
	var mean stats.Running
	p95 := stats.MustP2(0.95)
	maxT := start0.Air
	var predErrSum float64
	note := func() {
		t := tr.State().Air
		if predicted, ok := pred.ExtrapolateTo(clock); ok {
			errC := math.Abs(predicted - float64(t))
			predErrSum += errC
			res.PredictionSamples++
			pc.Ins.predictionError(errC)
		}
		pred.Observe(clock, t)
		over.observe(clock, t)
		pc.Ins.noteTemp(t)
		if t > maxT {
			maxT = t
		}
	}

	var failed error
	firstArrival := time.Duration(-1)
	var lastFinish time.Duration
	done := false

	serve := func(en *sim.Engine, r disksim.Request) bool {
		start := r.Arrival
		if rt := pc.Disk.ReadyTime(); rt > start {
			start = rt
		}
		advance(start, idleLoad)
		note()

		air := tr.State().Air
		if air >= reactEngageAt {
			// Backstop: the hard watermark stage, for trajectories the
			// predictor missed (fresh window, sudden load shift).
			res.ReactiveThrottles++
			reactFlaps.engage(clock)
			pause, _ := tr.AdvanceUntil(coolDown, coolLimit, reactCool)
			if pc.Mode == VCMAndRPM {
				pause += 2 * pc.spinTransition()
			}
			clock += pause
			res.ThrottledTime += pause
			pc.Ins.throttle(pause)
			throttleSpan(en, "dtm.throttle", clock-pause, clock, tr.State().Air)
			reactFlaps.release(clock)
			pred.Reset()
			start = clock
			pc.Disk.Delay(start)
			note()
		} else if air >= predEngageAt {
			if ttl, ok := pred.TimeToLimit(env); ok && ttl <= lead {
				// Predictive stage: the trajectory crosses the envelope
				// within the lead time — pause now, while still below it.
				res.EarlyThrottles++
				predFlaps.engage(clock)
				pause, _ := tr.AdvanceUntil(coolDown, coolLimit, predCool)
				if pc.Mode == VCMAndRPM {
					pause += 2 * pc.spinTransition()
				}
				clock += pause
				res.ThrottledTime += pause
				pc.Ins.earlyThrottle(pause)
				throttleSpan(en, "dtm.predict_throttle", clock-pause, clock, tr.State().Air)
				predFlaps.release(clock)
				pred.Reset()
				start = clock
				pc.Disk.Delay(start)
				note()
			}
		}

		comp, err := pc.Disk.Serve(r)
		if err != nil {
			if errors.Is(err, disksim.ErrDiskFailed) {
				res.DiskFailed = true
				res.FailedAt = pc.Disk.FailedAt()
				done = true
				return false
			}
			failed = err
			en.Fail(err)
			return false
		}
		advance(comp.Finish, busyLoad)
		note()
		mean.Add(comp.Response())
		p95.Add(comp.Response())
		lastFinish = comp.Finish
		sink.Push(comp)
		return true
	}

	if pc.SampleEvery > 0 {
		eng.Every(pc.SampleEvery, pc.SampleEvery, func(now time.Duration) bool {
			if done && eng.Pending() == 0 {
				return false
			}
			advance(now, idleLoad)
			note()
			return true
		})
	}
	sim.Chain(eng, src, func(r disksim.Request) time.Duration {
		if firstArrival < 0 {
			firstArrival = r.Arrival
		}
		return r.Arrival
	}, serve, func() { done = true })
	if err := eng.Run(); err != nil {
		return PredictiveResult{}, err
	}
	if failed != nil {
		return PredictiveResult{}, failed
	}

	res.MeanResponseMillis = mean.Mean()
	res.P95ResponseMillis = p95.Value()
	res.MaxAirTemp = maxT
	res.Flaps = predFlaps.flaps + reactFlaps.flaps
	res.TimeOverThreshold = over.over
	if res.PredictionSamples > 0 {
		res.MeanAbsPredErrC = predErrSum / float64(res.PredictionSamples)
	}
	res.Retries = pc.Disk.Retries()
	res.Remaps = pc.Disk.Remapped()
	if mean.N() > 0 {
		res.Elapsed = lastFinish - firstArrival
	}
	return res, nil
}

// Run services the requests (sorted by arrival, FCFS) under the predictive
// policy. It is the collect-into-slice wrapper over RunStream, with the
// response percentile computed exactly from the retained completions rather
// than P²-estimated.
func (pc *PredictiveController) Run(reqs []disksim.Request) (PredictiveResult, error) {
	var collect sim.Appender[disksim.Completion]
	res, err := pc.RunStream(sim.NewEngine(), sim.FromSlice(reqs), &collect)
	if err != nil {
		return PredictiveResult{}, err
	}
	res.Completions = collect.Items
	var sample stats.Sample
	for _, comp := range res.Completions {
		sample.Add(comp.Response())
	}
	res.MeanResponseMillis = sample.Mean()
	res.P95ResponseMillis = sample.Percentile(95)
	return res, nil
}
