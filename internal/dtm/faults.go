package dtm

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/disksim"
	"repro/internal/reliability"
	"repro/internal/units"
)

// ThermalFaults is the canonical disksim.FaultInjector: it turns the drive's
// current temperature into per-access fault decisions, wiring the paper's
// two thermal failure mechanisms into the service path. Off-track retries
// are drawn from OffTrackModel (thermal tilt of the disk stack and actuator
// eats the track-misregistration budget); whole-disk failures are drawn from
// the reliability doubling law ("even a fifteen degree Celsius rise from the
// ambient temperature can double the failure rate") as a temperature-
// weighted hazard over the operating time between accesses.
//
// All randomness comes from one explicitly seeded *rand.Rand, so a run is
// bit-for-bit reproducible: same seed, same trace, same decisions. Use one
// injector per disk.
type ThermalFaults struct {
	// OffTrack maps temperature to a per-access retry probability.
	OffTrack OffTrackModel

	// Reliability maps temperature to a failure rate.
	Reliability reliability.Model

	// Temp reads the drive's current internal air temperature; the DTM
	// controllers bind it to their thermal transient.
	Temp func(now time.Duration) units.Celsius

	// Rand is the injector's private, explicitly seeded randomness source.
	Rand *rand.Rand

	// MaxRetries is how many consecutive off-track retries the firmware
	// attempts before declaring the sector unrecoverable (0 = 4).
	MaxRetries int

	// TimeAcceleration scales wall-clock exposure when drawing failures,
	// so short simulations can observe events whose natural timescale is
	// months (0 = 1, the physical rate).
	TimeAcceleration float64

	lastAccess time.Duration
	started    bool
}

// NewThermalFaults builds an injector with an explicit seed.
func NewThermalFaults(off OffTrackModel, rel reliability.Model, temp func(time.Duration) units.Celsius, seed int64) *ThermalFaults {
	return &ThermalFaults{
		OffTrack:    off,
		Reliability: rel,
		Temp:        temp,
		Rand:        rand.New(rand.NewSource(seed)),
	}
}

func (f *ThermalFaults) maxRetries() int {
	if f.MaxRetries == 0 {
		return 4
	}
	return f.MaxRetries
}

func (f *ThermalFaults) accel() float64 {
	if f.TimeAcceleration == 0 {
		return 1
	}
	return f.TimeAcceleration
}

// Access implements disksim.FaultInjector. The retry count is the run
// length of successive off-track draws at the current temperature's
// probability; a run that exhausts MaxRetries and would go off-track once
// more is an unrecoverable sector. Disk failure is drawn from the
// accelerated hazard accumulated since the previous access.
func (f *ThermalFaults) Access(now time.Duration, _ disksim.Request) disksim.AccessFault {
	t := f.Temp(now)

	var out disksim.AccessFault
	if f.started && now > f.lastAccess {
		exposure := time.Duration(float64(now-f.lastAccess) * f.accel())
		if p := f.Reliability.FailureProb(t, exposure); p > 0 && f.Rand.Float64() < p {
			out.DiskFailure = true
		}
	}
	f.lastAccess = now
	f.started = true
	if out.DiskFailure {
		return out
	}

	p := f.OffTrack.ProbAt(t)
	for out.Retries < f.maxRetries() && f.Rand.Float64() < p {
		out.Retries++
	}
	if out.Retries == f.maxRetries() && f.Rand.Float64() < p {
		out.Unrecoverable = true
	}
	return out
}

// BindSteady wires the injector to a constant temperature — for open-loop
// studies without a thermal transient.
func BindSteady(t units.Celsius) func(time.Duration) units.Celsius {
	return func(time.Duration) units.Celsius { return t }
}

// String summarises the injector configuration.
func (f *ThermalFaults) String() string {
	return fmt.Sprintf("ThermalFaults{maxRetries=%d accel=%.0fx}", f.maxRetries(), f.accel())
}
