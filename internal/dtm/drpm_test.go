package dtm

import (
	"testing"
	"time"

	"repro/internal/thermal"
	"repro/internal/units"
)

func drpmLevels() []units.RPM { return []units.RPM{15020, 18000, 21000, 24534} }

func TestDRPMConfigErrors(t *testing.T) {
	if _, err := (&DRPM{}).Run(nil); err == nil {
		t.Error("empty DRPM should be rejected")
	}
	disk, th := buildDTMDisk(t, 24534)
	one := DRPM{Disk: disk, Thermal: th, Levels: []units.RPM{24534}}
	if _, err := one.Run(nil); err == nil {
		t.Error("single level should be rejected")
	}
	off := DRPM{Disk: disk, Thermal: th, Levels: []units.RPM{10000, 20000}}
	if _, err := off.Run(nil); err == nil {
		t.Error("disk speed outside the level set should be rejected")
	}
}

func TestDRPMStaysAtTopWhenCool(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disk, th := buildDTMDisk(t, 24534)
	p := DRPM{Disk: disk, Thermal: th, Levels: drpmLevels()}
	// A light stream: never near the envelope, so the disk holds the top
	// level throughout.
	reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 3000, 40)
	res, err := p.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions != 0 {
		t.Errorf("cool run should not change levels; %d transitions", res.Transitions)
	}
	if res.TimeAtLevel[24534] == 0 {
		t.Error("no time recorded at the top level")
	}
}

func TestDRPMStepsDownUnderSustainedHeat(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disk, th := buildDTMDisk(t, 24534)
	warm := th.SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.62, Ambient: thermal.DefaultAmbient})
	p := DRPM{Disk: disk, Thermal: th, Levels: drpmLevels(), Initial: &warm}
	// Sustained heavy seeking from a near-envelope start: the ladder must
	// step down, and the envelope must hold.
	reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 30000, 150)
	res, err := p.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 {
		t.Error("sustained heat should force level changes")
	}
	if float64(res.MaxAirTemp) > float64(thermal.Envelope)+0.2 {
		t.Errorf("DRPM let the drive reach %.2f C", float64(res.MaxAirTemp))
	}
	lower := res.TimeAtLevel[15020] + res.TimeAtLevel[18000] + res.TimeAtLevel[21000]
	if lower == 0 {
		t.Error("no time spent at reduced levels")
	}
}

func TestDRPMBeatsFixedLowSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	// A bursty but mostly-light stream: DRPM should serve it faster than a
	// drive pinned at the envelope-design bottom level.
	reqs := dtmWorkload(t, 1<<24, 6000, 60)

	fast, th := buildDTMDisk(t, 24534)
	p := DRPM{Disk: fast, Thermal: th, Levels: drpmLevels()}
	// Restrict to the drive's real address space.
	for i := range reqs {
		reqs[i].LBN %= fast.Layout().TotalSectors() - 64
	}
	res, err := p.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	slow, _ := buildDTMDisk(t, 15020)
	comps, err := slow.Simulate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, c := range comps {
		sum += c.Response()
	}
	slowMean := float64(sum) / float64(len(comps)) / float64(time.Millisecond)
	if res.MeanResponseMillis >= slowMean {
		t.Errorf("DRPM (%.2f ms) not faster than fixed low speed (%.2f ms)",
			res.MeanResponseMillis, slowMean)
	}
}
