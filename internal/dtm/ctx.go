// Cooperative cancellation for the streaming controllers. Each RunStreamCtx
// gates the request source on a context — the run ends at the next
// admission once the context is done — and reports ctx.Err() instead of a
// partial-looking result, which is what the serving layer's job
// cancellation and per-job deadlines rely on. With a never-cancelled
// context the wrappers are their RunStream plus one nil-error check per
// request, so seeded runs stay bit-identical.
package dtm

import (
	"context"

	"repro/internal/disksim"
	"repro/internal/sim"
)

// RunStreamCtx is Controller.RunStream with cooperative cancellation.
func (c *Controller) RunStreamCtx(ctx context.Context, eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (Result, error) {
	res, err := c.RunStream(eng, sim.Gate(ctx, src), sink)
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// RunStreamCtx is SlackRamp.RunStream with cooperative cancellation.
func (s *SlackRamp) RunStreamCtx(ctx context.Context, eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (RampResult, error) {
	res, err := s.RunStream(eng, sim.Gate(ctx, src), sink)
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return RampResult{}, err
	}
	return res, nil
}

// RunStreamCtx is DRPM.RunStream with cooperative cancellation.
func (p *DRPM) RunStreamCtx(ctx context.Context, eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (DRPMResult, error) {
	res, err := p.RunStream(eng, sim.Gate(ctx, src), sink)
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return DRPMResult{}, err
	}
	return res, nil
}

// RunStreamCtx is PredictiveController.RunStream with cooperative
// cancellation.
func (pc *PredictiveController) RunStreamCtx(ctx context.Context, eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (PredictiveResult, error) {
	res, err := pc.RunStream(eng, sim.Gate(ctx, src), sink)
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return PredictiveResult{}, err
	}
	return res, nil
}

// RunStreamCtx is Escalation.RunStream with cooperative cancellation.
func (e *Escalation) RunStreamCtx(ctx context.Context, eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (EscalationResult, error) {
	res, err := e.RunStream(eng, sim.Gate(ctx, src), sink)
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return EscalationResult{}, err
	}
	return res, nil
}
