package dtm

import (
	"fmt"
	"time"

	"repro/internal/geometry"
	"repro/internal/thermal"
	"repro/internal/units"
)

// ThrottleMode selects what the throttling mechanism turns off when the
// drive approaches the envelope (the paper's Figure 6 scenarios).
type ThrottleMode int

// Supported modes.
const (
	// VCMOnly stops issuing requests (VCM off) while the spindle keeps
	// full speed — Figure 6(a). Viable when the VCM-off temperature is
	// below the envelope.
	VCMOnly ThrottleMode = iota
	// VCMAndRPM stops requests and drops to a lower spindle speed —
	// Figure 6(b), for drives so fast that even VCM-off operation exceeds
	// the envelope. Requests are always serviced at the high speed.
	VCMAndRPM
)

// String implements fmt.Stringer.
func (m ThrottleMode) String() string {
	switch m {
	case VCMOnly:
		return "VCM-only"
	case VCMAndRPM:
		return "VCM+RPM"
	default:
		return fmt.Sprintf("ThrottleMode(%d)", int(m))
	}
}

// ThrottleExperiment reproduces the paper's Figure 7 measurement: a drive
// designed for average-case behaviour runs at a speed whose worst case
// violates the envelope; starting from the envelope, the VCM (and in
// VCMAndRPM mode the spindle) is throttled for t_cool, then full activity
// resumes and t_heat — the time until the envelope is hit again — is
// measured. The throttling ratio is t_heat / t_cool.
type ThrottleExperiment struct {
	// Drive is the geometry (the paper uses a single 2.6" platter).
	Drive geometry.Drive

	// RPM is the operating (service) speed: 24,534 in Figure 7(a),
	// 37,001 in Figure 7(b).
	RPM units.RPM

	// LowRPM is the cool-down speed for VCMAndRPM (22,001 in the paper).
	LowRPM units.RPM

	// Mode selects the mechanism.
	Mode ThrottleMode

	// Ambient is the external temperature (0 = the default 28 C).
	Ambient units.Celsius

	// Envelope overrides the thermal envelope when nonzero.
	Envelope units.Celsius
}

func (e ThrottleExperiment) ambient() units.Celsius {
	if e.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return e.Ambient
}

func (e ThrottleExperiment) envelope() units.Celsius {
	if e.Envelope == 0 {
		return thermal.Envelope
	}
	return e.Envelope
}

// coolLoad is the thermal operating point during throttling.
func (e ThrottleExperiment) coolLoad() thermal.Load {
	l := thermal.Load{RPM: e.RPM, VCMDuty: 0, Ambient: e.ambient()}
	if e.Mode == VCMAndRPM {
		l.RPM = e.LowRPM
	}
	return l
}

// hotLoad is the full-activity operating point.
func (e ThrottleExperiment) hotLoad() thermal.Load {
	return thermal.Load{RPM: e.RPM, VCMDuty: 1, Ambient: e.ambient()}
}

// Validate reports whether the experiment is meaningful: full activity must
// exceed the envelope (otherwise no throttling is ever needed) and the
// cool-down state must fall below it (otherwise throttling cannot help).
func (e ThrottleExperiment) Validate() error {
	m, err := thermal.New(e.Drive)
	if err != nil {
		return err
	}
	if e.Mode == VCMAndRPM && (e.LowRPM <= 0 || e.LowRPM >= e.RPM) {
		return fmt.Errorf("dtm: low speed %v must be below operating speed %v", e.LowRPM, e.RPM)
	}
	env := float64(e.envelope())
	if hot := float64(m.SteadyState(e.hotLoad()).Air); hot <= env {
		return fmt.Errorf("dtm: full activity steady state %.2f C within envelope %.2f C; nothing to throttle", hot, env)
	}
	if cool := float64(m.SteadyState(e.coolLoad()).Air); cool >= env {
		return fmt.Errorf("dtm: cool-down steady state %.2f C above envelope %.2f C; throttling cannot help", cool, env)
	}
	return nil
}

// RatioPoint is one point of a Figure 7 curve.
type RatioPoint struct {
	TCool time.Duration
	THeat time.Duration
	Ratio float64
}

// heatLimit caps the heat phase; if the envelope is not reached by then the
// drive effectively never needs throttling at this t_cool.
const heatLimit = time.Hour

// Ratio measures t_heat for one t_cool and returns the throttling ratio.
func (e ThrottleExperiment) Ratio(tcool time.Duration) (RatioPoint, error) {
	if tcool <= 0 {
		return RatioPoint{}, fmt.Errorf("dtm: non-positive t_cool %v", tcool)
	}
	if err := e.Validate(); err != nil {
		return RatioPoint{}, err
	}
	m, err := thermal.New(e.Drive)
	if err != nil {
		return RatioPoint{}, err
	}
	env := e.envelope()
	atEnvelope := func(s thermal.State) bool { return s.Air >= env }

	// Start from the envelope, as the paper does: heat the drive from the
	// cool-load steady state under full activity until the air first
	// touches the envelope. That crossing state is the experiment's
	// well-defined "initial temperature set to the thermal envelope".
	tr := m.NewTransient(m.SteadyState(e.coolLoad()))
	if _, ok := tr.AdvanceUntil(e.hotLoad(), heatLimit, atEnvelope); !ok {
		return RatioPoint{}, fmt.Errorf("dtm: drive never reached the envelope while heating")
	}

	// One cool + heat cycle, per the paper's single-shot procedure.
	pt := RatioPoint{TCool: tcool}
	tr.Advance(e.coolLoad(), tcool)
	theat, reached := tr.AdvanceUntil(e.hotLoad(), heatLimit, atEnvelope)
	if !reached {
		theat = heatLimit
	}
	pt.THeat = theat
	pt.Ratio = float64(pt.THeat) / float64(tcool)
	return pt, nil
}

// Sweep evaluates the ratio across a set of cooling intervals (Figure 7 uses
// t_cool from a fraction of a second to eight seconds).
func (e ThrottleExperiment) Sweep(tcools []time.Duration) ([]RatioPoint, error) {
	out := make([]RatioPoint, 0, len(tcools))
	for _, tc := range tcools {
		pt, err := e.Ratio(tc)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// Figure7a returns the paper's first throttling scenario: the 2.6" drive at
// 24,534 RPM (the speed the 2005 IDR target needs), VCM-only throttling.
func Figure7a() ThrottleExperiment {
	return ThrottleExperiment{
		Drive: thermal.ReferenceDrive,
		RPM:   24534,
		Mode:  VCMOnly,
	}
}

// Figure7b returns the second scenario: 37,001 RPM (the 2007 target) with a
// 22,001 RPM cool-down speed — dual-speed throttling.
func Figure7b() ThrottleExperiment {
	return ThrottleExperiment{
		Drive:  thermal.ReferenceDrive,
		RPM:    37001,
		LowRPM: 22001,
		Mode:   VCMAndRPM,
	}
}

// DefaultTCools is the Figure 7 sweep grid.
func DefaultTCools() []time.Duration {
	out := make([]time.Duration, 0, 16)
	for ms := 500; ms <= 8000; ms += 500 {
		out = append(out, time.Duration(ms)*time.Millisecond)
	}
	return out
}
