package dtm

import (
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Controller is a closed-loop DTM policy coupling one disk's request stream
// to its thermal transient — the control layer the paper's section 5.4
// sketches as future work. The disk runs at an average-case speed whose
// worst case violates the envelope; the controller watches the internal air
// temperature and gates request admission (and optionally drops the spindle
// speed) whenever the drive approaches the envelope.
type Controller struct {
	// Disk services the requests. Its RPM is the high (service) speed.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// Mode selects VCM-only or dual-speed throttling.
	Mode ThrottleMode

	// LowRPM is the cool-down speed for VCMAndRPM.
	LowRPM units.RPM

	// Envelope is the temperature that must never be exceeded
	// (0 = thermal.Envelope).
	Envelope units.Celsius

	// Guard is how far below the envelope the controller begins throttling
	// (default 0.05 C).
	Guard units.Celsius

	// Hysteresis is how far below the envelope the drive must cool before
	// requests resume (default 0.5 C).
	Hysteresis units.Celsius

	// Ambient is the external temperature (0 = default 28 C).
	Ambient units.Celsius

	// SpinTransition is the time an RPM change takes in VCMAndRPM mode
	// (default 2 s, in line with published two-speed drive data).
	SpinTransition time.Duration

	// Initial optionally sets the starting thermal state (nil = the drive
	// soaked at ambient). Warm starts model a drive that has already been
	// under load when the measured interval begins.
	Initial *thermal.State

	// SeekDuty, when set, charges the VCM only for each request's actual
	// seek time instead of the whole service time. The default (false) is
	// conservative: the thermal controller sees the worst-case duty the
	// envelope is defined against.
	SeekDuty bool

	// SampleEvery, when positive, adds a periodic temperature-observation
	// tick on the event-engine clock during RunStream: the thermal
	// transient advances through idle gaps in sample-sized steps and
	// MaxAirTemp reflects those observations. Zero (the default) keeps
	// runs bit-identical to the batch path.
	SampleEvery time.Duration

	// Ins is the optional metric handle set (NewInstruments); nil — the
	// default — keeps the control loop observation-free.
	Ins *Instruments
}

// Result summarises a controlled run.
type Result struct {
	// Completions per request, in service order.
	Completions []disksim.Completion

	// MeanResponseMillis and P95ResponseMillis summarise response times.
	MeanResponseMillis float64
	P95ResponseMillis  float64

	// MaxAirTemp is the hottest internal air temperature observed.
	MaxAirTemp units.Celsius

	// ThrottleEvents counts cooling pauses; ThrottledTime is their total
	// duration.
	ThrottleEvents int
	ThrottledTime  time.Duration

	// Elapsed is the simulated time from first arrival to last completion.
	Elapsed time.Duration
}

func (c *Controller) envelope() units.Celsius {
	if c.Envelope == 0 {
		return thermal.Envelope
	}
	return c.Envelope
}

func (c *Controller) ambient() units.Celsius {
	if c.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return c.Ambient
}

func (c *Controller) guard() units.Celsius {
	if c.Guard == 0 {
		return 0.05
	}
	return c.Guard
}

func (c *Controller) hysteresis() units.Celsius {
	if c.Hysteresis == 0 {
		return 0.5
	}
	return c.Hysteresis
}

func (c *Controller) spinTransition() time.Duration {
	if c.SpinTransition == 0 {
		return 2 * time.Second
	}
	return c.SpinTransition
}

// coolLimit caps one cooling pause.
const coolLimit = 10 * time.Minute

// Run services the requests (which must be sorted by arrival; FCFS) under
// the thermal policy, starting from the drive soaked at ambient. It is the
// collect-into-slice wrapper over RunStream, with the response percentile
// computed exactly from the retained completions rather than P²-estimated.
func (c *Controller) Run(reqs []disksim.Request) (Result, error) {
	var collect sim.Appender[disksim.Completion]
	res, err := c.RunStream(sim.NewEngine(), sim.FromSlice(reqs), &collect)
	if err != nil {
		return Result{}, err
	}
	res.Completions = collect.Items
	var sample stats.Sample
	for _, comp := range res.Completions {
		sample.Add(comp.Response())
	}
	res.MeanResponseMillis = sample.Mean()
	res.P95ResponseMillis = sample.Percentile(95)
	return res, nil
}

// SlackRamp is the first DTM mechanism (section 5.2) as a closed-loop
// policy: a two-speed disk runs at its envelope-design speed and ramps to a
// higher speed whenever the measured temperature leaves enough slack,
// dropping back as the envelope nears.
type SlackRamp struct {
	// Disk services requests; its initial speed is the base speed.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// BoostRPM is the higher of the two speeds.
	BoostRPM units.RPM

	// RampAt is the temperature below which the controller boosts
	// (default envelope - 2 C).
	RampAt units.Celsius

	// DropAt is the temperature at which it falls back
	// (default envelope - 0.2 C).
	DropAt units.Celsius

	// Ambient is the external temperature (0 = default).
	Ambient units.Celsius

	// SpinTransition is the speed-change time (default 2 s).
	SpinTransition time.Duration

	// Initial optionally warm-starts the thermal state (nil = the drive
	// soaked at ambient).
	Initial *thermal.State

	// OverAt is the threshold the TimeOverThreshold integral measures
	// against (0 = thermal.Envelope).
	OverAt units.Celsius

	// FlapWindow is the re-arm window within which a boost counts as a
	// flap when it follows the previous drop that closely (0 = 5 s).
	FlapWindow time.Duration

	// Faults, when non-nil, is installed on the disk with its Temp bound
	// to the run's transient, as in Escalation.
	Faults *ThermalFaults

	// SampleEvery, when positive, adds a periodic temperature-observation
	// tick on the event-engine clock during RunStream (zero = off).
	SampleEvery time.Duration

	// Ins is the optional metric handle set (NewInstruments); nil — the
	// default — keeps the control loop observation-free.
	Ins *Instruments
}

// RampResult summarises a slack-ramp run.
type RampResult struct {
	MeanResponseMillis float64

	// P95ResponseMillis is a streaming P² estimate (both Run and RunStream;
	// the ramp keeps no completion slice).
	P95ResponseMillis float64

	MaxAirTemp  units.Celsius
	BoostedTime time.Duration
	Transitions int

	// Flaps counts boosts landing within FlapWindow of the previous drop;
	// TimeOverThreshold integrates sim time at or above OverAt.
	Flaps             int
	TimeOverThreshold time.Duration

	// Retries and Remaps are the injected-fault outcomes (zero without an
	// injector); DiskFailed/FailedAt mirror Escalation's graceful death.
	Retries, Remaps int64
	DiskFailed      bool
	FailedAt        time.Duration

	Elapsed time.Duration
}

// Run services the requests under the slack-ramping policy. It is the batch
// wrapper over RunStream (the running mean reproduces the batch mean
// exactly: same additions in the same order).
func (s *SlackRamp) Run(reqs []disksim.Request) (RampResult, error) {
	return s.RunStream(sim.NewEngine(), sim.FromSlice(reqs), sim.Discard[disksim.Completion]())
}
