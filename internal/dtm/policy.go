package dtm

import (
	"fmt"
	"time"

	"repro/internal/disksim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Controller is a closed-loop DTM policy coupling one disk's request stream
// to its thermal transient — the control layer the paper's section 5.4
// sketches as future work. The disk runs at an average-case speed whose
// worst case violates the envelope; the controller watches the internal air
// temperature and gates request admission (and optionally drops the spindle
// speed) whenever the drive approaches the envelope.
type Controller struct {
	// Disk services the requests. Its RPM is the high (service) speed.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// Mode selects VCM-only or dual-speed throttling.
	Mode ThrottleMode

	// LowRPM is the cool-down speed for VCMAndRPM.
	LowRPM units.RPM

	// Envelope is the temperature that must never be exceeded
	// (0 = thermal.Envelope).
	Envelope units.Celsius

	// Guard is how far below the envelope the controller begins throttling
	// (default 0.05 C).
	Guard units.Celsius

	// Hysteresis is how far below the envelope the drive must cool before
	// requests resume (default 0.5 C).
	Hysteresis units.Celsius

	// Ambient is the external temperature (0 = default 28 C).
	Ambient units.Celsius

	// SpinTransition is the time an RPM change takes in VCMAndRPM mode
	// (default 2 s, in line with published two-speed drive data).
	SpinTransition time.Duration

	// Initial optionally sets the starting thermal state (nil = the drive
	// soaked at ambient). Warm starts model a drive that has already been
	// under load when the measured interval begins.
	Initial *thermal.State

	// SeekDuty, when set, charges the VCM only for each request's actual
	// seek time instead of the whole service time. The default (false) is
	// conservative: the thermal controller sees the worst-case duty the
	// envelope is defined against.
	SeekDuty bool
}

// Result summarises a controlled run.
type Result struct {
	// Completions per request, in service order.
	Completions []disksim.Completion

	// MeanResponseMillis and P95ResponseMillis summarise response times.
	MeanResponseMillis float64
	P95ResponseMillis  float64

	// MaxAirTemp is the hottest internal air temperature observed.
	MaxAirTemp units.Celsius

	// ThrottleEvents counts cooling pauses; ThrottledTime is their total
	// duration.
	ThrottleEvents int
	ThrottledTime  time.Duration

	// Elapsed is the simulated time from first arrival to last completion.
	Elapsed time.Duration
}

func (c *Controller) envelope() units.Celsius {
	if c.Envelope == 0 {
		return thermal.Envelope
	}
	return c.Envelope
}

func (c *Controller) ambient() units.Celsius {
	if c.Ambient == 0 {
		return thermal.DefaultAmbient
	}
	return c.Ambient
}

func (c *Controller) guard() units.Celsius {
	if c.Guard == 0 {
		return 0.05
	}
	return c.Guard
}

func (c *Controller) hysteresis() units.Celsius {
	if c.Hysteresis == 0 {
		return 0.5
	}
	return c.Hysteresis
}

func (c *Controller) spinTransition() time.Duration {
	if c.SpinTransition == 0 {
		return 2 * time.Second
	}
	return c.SpinTransition
}

// coolLimit caps one cooling pause.
const coolLimit = 10 * time.Minute

// Run services the requests (which must be sorted by arrival; FCFS) under
// the thermal policy, starting from the drive soaked at ambient.
func (c *Controller) Run(reqs []disksim.Request) (Result, error) {
	if c.Disk == nil || c.Thermal == nil {
		return Result{}, fmt.Errorf("dtm: controller needs a disk and a thermal model")
	}
	if c.Mode == VCMAndRPM && (c.LowRPM <= 0 || c.LowRPM >= c.Disk.RPM()) {
		return Result{}, fmt.Errorf("dtm: low speed %v must be below service speed %v", c.LowRPM, c.Disk.RPM())
	}
	highRPM := c.Disk.RPM()
	env := c.envelope()
	amb := c.ambient()
	guardAt := env - c.guard()
	resumeAt := env - c.hysteresis()

	idleLoad := thermal.Load{RPM: highRPM, VCMDuty: 0, Ambient: amb}
	busyLoad := thermal.Load{RPM: highRPM, VCMDuty: 1, Ambient: amb}
	coolDown := idleLoad
	if c.Mode == VCMAndRPM {
		coolDown.RPM = c.LowRPM
	}

	start0 := thermal.Uniform(amb)
	if c.Initial != nil {
		start0 = *c.Initial
	}
	tr := c.Thermal.NewTransient(start0)
	clock := time.Duration(0) // thermal clock, tracks disk time

	advance := func(to time.Duration, load thermal.Load) {
		if to > clock {
			tr.Advance(load, to-clock)
			clock = to
		}
	}

	var res Result
	var sample stats.Sample
	maxT := start0.Air
	note := func() {
		if t := tr.State().Air; t > maxT {
			maxT = t
		}
	}

	for _, r := range reqs {
		start := r.Arrival
		if rt := c.Disk.ReadyTime(); rt > start {
			start = rt
		}
		// Idle (or queued-but-not-seeking) period up to the service start.
		advance(start, idleLoad)
		note()

		// Throttle if the drive is at the guard band.
		if tr.State().Air >= guardAt {
			res.ThrottleEvents++
			pause, _ := tr.AdvanceUntil(coolDown, coolLimit,
				func(s thermal.State) bool { return s.Air <= resumeAt })
			if c.Mode == VCMAndRPM {
				pause += 2 * c.spinTransition() // down and back up
			}
			clock += pause
			res.ThrottledTime += pause
			start = clock
			c.Disk.Delay(start)
		}

		comp, err := c.Disk.Serve(r)
		if err != nil {
			return Result{}, err
		}
		load := busyLoad
		if c.SeekDuty {
			if svc := comp.Finish - comp.Start; svc > 0 {
				load.VCMDuty = float64(comp.Parts.Seek) / float64(svc)
			}
		}
		advance(comp.Finish, load)
		note()
		sample.Add(comp.Response())
		res.Completions = append(res.Completions, comp)
	}

	res.MeanResponseMillis = sample.Mean()
	res.P95ResponseMillis = sample.Percentile(95)
	res.MaxAirTemp = maxT
	if n := len(res.Completions); n > 0 {
		res.Elapsed = res.Completions[n-1].Finish - reqs[0].Arrival
	}
	return res, nil
}

// SlackRamp is the first DTM mechanism (section 5.2) as a closed-loop
// policy: a two-speed disk runs at its envelope-design speed and ramps to a
// higher speed whenever the measured temperature leaves enough slack,
// dropping back as the envelope nears.
type SlackRamp struct {
	// Disk services requests; its initial speed is the base speed.
	Disk *disksim.Disk

	// Thermal is the drive's thermal model.
	Thermal *thermal.Model

	// BoostRPM is the higher of the two speeds.
	BoostRPM units.RPM

	// RampAt is the temperature below which the controller boosts
	// (default envelope - 2 C).
	RampAt units.Celsius

	// DropAt is the temperature at which it falls back
	// (default envelope - 0.2 C).
	DropAt units.Celsius

	// Ambient is the external temperature (0 = default).
	Ambient units.Celsius

	// SpinTransition is the speed-change time (default 2 s).
	SpinTransition time.Duration
}

// RampResult summarises a slack-ramp run.
type RampResult struct {
	MeanResponseMillis float64
	MaxAirTemp         units.Celsius
	BoostedTime        time.Duration
	Transitions        int
	Elapsed            time.Duration
}

// Run services the requests under the slack-ramping policy.
func (s *SlackRamp) Run(reqs []disksim.Request) (RampResult, error) {
	if s.Disk == nil || s.Thermal == nil {
		return RampResult{}, fmt.Errorf("dtm: ramp needs a disk and a thermal model")
	}
	base := s.Disk.RPM()
	if s.BoostRPM <= base {
		return RampResult{}, fmt.Errorf("dtm: boost %v must exceed base %v", s.BoostRPM, base)
	}
	amb := s.Ambient
	if amb == 0 {
		amb = thermal.DefaultAmbient
	}
	rampAt := s.RampAt
	if rampAt == 0 {
		rampAt = thermal.Envelope - 2
	}
	dropAt := s.DropAt
	if dropAt == 0 {
		dropAt = thermal.Envelope - 0.2
	}
	trans := s.SpinTransition
	if trans == 0 {
		trans = 2 * time.Second
	}

	tr := s.Thermal.NewTransient(thermal.Uniform(amb))
	clock := time.Duration(0)
	boosted := false
	var res RampResult
	var sample stats.Sample
	maxT := units.Celsius(amb)

	load := func(duty float64) thermal.Load {
		rpm := base
		if boosted {
			rpm = s.BoostRPM
		}
		return thermal.Load{RPM: rpm, VCMDuty: duty, Ambient: amb}
	}
	advance := func(to time.Duration, duty float64) {
		if to > clock {
			tr.Advance(load(duty), to-clock)
			clock = to
		}
		if t := tr.State().Air; t > maxT {
			maxT = t
		}
	}

	for _, r := range reqs {
		start := r.Arrival
		if rt := s.Disk.ReadyTime(); rt > start {
			start = rt
		}
		advance(start, 0)

		// Speed decisions happen between requests.
		switch air := tr.State().Air; {
		case !boosted && air <= rampAt:
			boosted = true
			res.Transitions++
			clock += trans
			s.Disk.Delay(clock)
			if err := s.Disk.SetRPM(s.BoostRPM); err != nil {
				return RampResult{}, err
			}
		case boosted && air >= dropAt:
			boosted = false
			res.Transitions++
			clock += trans
			s.Disk.Delay(clock)
			if err := s.Disk.SetRPM(base); err != nil {
				return RampResult{}, err
			}
		}

		comp, err := s.Disk.Serve(r)
		if err != nil {
			return RampResult{}, err
		}
		if boosted {
			res.BoostedTime += comp.Finish - comp.Start
		}
		advance(comp.Finish, 1)
		sample.Add(comp.Response())
		res.Elapsed = comp.Finish - reqs[0].Arrival
	}
	res.MeanResponseMillis = sample.Mean()
	res.MaxAirTemp = maxT
	return res, nil
}
