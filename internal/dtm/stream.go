// Streaming DTM: the controllers as event-loop processes. Each RunStream
// pulls requests lazily from a source, admits them as events on a (possibly
// shared) sim.Engine, and co-advances the drive's thermal transient with the
// disk clock — so a 10M-request replay runs in O(1) memory, and a controller
// can share one engine with other processes (a second volume, a fault
// timeline) on a single deterministic timeline.
//
// Each controller's Run method is the collect-into-slice wrapper over its
// RunStream; with SampleEvery left zero the two produce identical results.
// The streaming summaries use the O(1) accumulators in internal/stats:
// Running reproduces Sample's mean bit-for-bit (same additions, same order),
// while the 95th percentile is a P² estimate rather than the exact order
// statistic the batch wrappers report.
package dtm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// RunStream services requests pulled lazily from src under the thermal
// policy, pushing each completion to sink as it happens. The source must
// yield requests in nondecreasing arrival order (FCFS). The returned
// Result carries streaming statistics (P² p95) and a nil Completions slice.
//
// When SampleEvery is positive, a periodic tick observes the internal air
// temperature on the engine clock, advancing the transient through idle
// gaps in sample-sized steps; MaxAirTemp then reflects those extra
// observations.
func (c *Controller) RunStream(eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (Result, error) {
	if c.Disk == nil || c.Thermal == nil {
		return Result{}, fmt.Errorf("dtm: controller needs a disk and a thermal model")
	}
	if c.Mode == VCMAndRPM && (c.LowRPM <= 0 || c.LowRPM >= c.Disk.RPM()) {
		return Result{}, fmt.Errorf("dtm: low speed %v must be below service speed %v", c.LowRPM, c.Disk.RPM())
	}
	if eng == nil {
		eng = sim.NewEngine()
	}
	highRPM := c.Disk.RPM()
	env := c.envelope()
	amb := c.ambient()
	guardAt := env - c.guard()
	resumeAt := env - c.hysteresis()

	idleLoad := thermal.Load{RPM: highRPM, VCMDuty: 0, Ambient: amb}
	busyLoad := thermal.Load{RPM: highRPM, VCMDuty: 1, Ambient: amb}
	coolDown := idleLoad
	if c.Mode == VCMAndRPM {
		coolDown.RPM = c.LowRPM
	}

	start0 := thermal.Uniform(amb)
	if c.Initial != nil {
		start0 = *c.Initial
	}
	tr := c.Thermal.NewTransient(start0)
	clock := time.Duration(0) // thermal clock, tracks disk time

	advance := func(to time.Duration, load thermal.Load) {
		if to > clock {
			tr.Advance(load, to-clock)
			clock = to
		}
	}

	var res Result
	var mean stats.Running
	p95 := stats.MustP2(0.95)
	maxT := start0.Air
	note := func() {
		t := tr.State().Air
		c.Ins.noteTemp(t)
		if t > maxT {
			maxT = t
		}
	}

	var failed error
	firstArrival := time.Duration(-1)
	var lastFinish time.Duration
	done := false

	serve := func(e *sim.Engine, r disksim.Request) bool {
		start := r.Arrival
		if rt := c.Disk.ReadyTime(); rt > start {
			start = rt
		}
		// Idle (or queued-but-not-seeking) period up to the service start.
		advance(start, idleLoad)
		note()

		// Throttle if the drive is at the guard band.
		if tr.State().Air >= guardAt {
			res.ThrottleEvents++
			pause, _ := tr.AdvanceUntil(coolDown, coolLimit,
				func(s thermal.State) bool { return s.Air <= resumeAt })
			if c.Mode == VCMAndRPM {
				pause += 2 * c.spinTransition() // down and back up
			}
			clock += pause
			res.ThrottledTime += pause
			c.Ins.throttle(pause)
			throttleSpan(e, "dtm.throttle", clock-pause, clock, tr.State().Air)
			start = clock
			c.Disk.Delay(start)
		}

		comp, err := c.Disk.Serve(r)
		if err != nil {
			failed = err
			e.Fail(err)
			return false
		}
		load := busyLoad
		if c.SeekDuty {
			if svc := comp.Finish - comp.Start; svc > 0 {
				load.VCMDuty = float64(comp.Parts.Seek) / float64(svc)
			}
		}
		advance(comp.Finish, load)
		note()
		mean.Add(comp.Response())
		p95.Add(comp.Response())
		lastFinish = comp.Finish
		sink.Push(comp)
		return true
	}

	if c.SampleEvery > 0 {
		eng.Every(c.SampleEvery, c.SampleEvery, func(now time.Duration) bool {
			if done && eng.Pending() == 0 {
				return false
			}
			advance(now, idleLoad)
			note()
			return true
		})
	}
	sim.Chain(eng, src, func(r disksim.Request) time.Duration {
		if firstArrival < 0 {
			firstArrival = r.Arrival
		}
		return r.Arrival
	}, serve, func() { done = true })
	if err := eng.Run(); err != nil {
		return Result{}, err
	}
	if failed != nil {
		return Result{}, failed
	}

	res.MeanResponseMillis = mean.Mean()
	res.P95ResponseMillis = p95.Value()
	res.MaxAirTemp = maxT
	if mean.N() > 0 {
		res.Elapsed = lastFinish - firstArrival
	}
	return res, nil
}

// RunStream services requests pulled lazily from src under the slack-ramping
// policy, pushing completions to sink. The source must yield requests in
// nondecreasing arrival order (FCFS).
func (s *SlackRamp) RunStream(eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (RampResult, error) {
	if s.Disk == nil || s.Thermal == nil {
		return RampResult{}, fmt.Errorf("dtm: ramp needs a disk and a thermal model")
	}
	base := s.Disk.RPM()
	if s.BoostRPM <= base {
		return RampResult{}, fmt.Errorf("dtm: boost %v must exceed base %v", s.BoostRPM, base)
	}
	if eng == nil {
		eng = sim.NewEngine()
	}
	amb := s.Ambient
	if amb == 0 {
		amb = thermal.DefaultAmbient
	}
	rampAt := s.RampAt
	if rampAt == 0 {
		rampAt = thermal.Envelope - 2
	}
	dropAt := s.DropAt
	if dropAt == 0 {
		dropAt = thermal.Envelope - 0.2
	}
	trans := s.SpinTransition
	if trans == 0 {
		trans = 2 * time.Second
	}

	start0 := thermal.Uniform(amb)
	if s.Initial != nil {
		start0 = *s.Initial
	}
	tr := s.Thermal.NewTransient(start0)
	clock := time.Duration(0)
	boosted := false
	var res RampResult
	var mean stats.Running
	p95 := stats.MustP2(0.95)
	maxT := start0.Air
	overAt := s.OverAt
	if overAt == 0 {
		overAt = thermal.Envelope
	}
	over := overTracker{limit: overAt}
	fw := s.FlapWindow
	if fw == 0 {
		fw = defaultFlapWindow
	}
	flaps := flapTracker{window: fw}

	if s.Faults != nil {
		s.Faults.Temp = func(time.Duration) units.Celsius { return tr.State().Air }
		s.Disk.SetFaults(s.Faults)
		defer s.Disk.SetFaults(nil)
	}

	load := func(duty float64) thermal.Load {
		rpm := base
		if boosted {
			rpm = s.BoostRPM
		}
		return thermal.Load{RPM: rpm, VCMDuty: duty, Ambient: amb}
	}
	advance := func(to time.Duration, duty float64) {
		if to > clock {
			tr.Advance(load(duty), to-clock)
			clock = to
		}
		t := tr.State().Air
		s.Ins.noteTemp(t)
		over.observe(clock, t)
		if t > maxT {
			maxT = t
		}
	}

	var failed error
	firstArrival := time.Duration(-1)
	done := false

	serve := func(e *sim.Engine, r disksim.Request) bool {
		start := r.Arrival
		if rt := s.Disk.ReadyTime(); rt > start {
			start = rt
		}
		advance(start, 0)

		// Speed decisions happen between requests.
		switch air := tr.State().Air; {
		case !boosted && air <= rampAt:
			boosted = true
			res.Transitions++
			flaps.engage(clock)
			clock += trans
			s.Ins.transition()
			throttleSpan(e, "dtm.rpm_transition", clock-trans, clock, air)
			s.Disk.Delay(clock)
			if err := s.Disk.SetRPM(s.BoostRPM); err != nil {
				failed = err
				e.Fail(err)
				return false
			}
		case boosted && air >= dropAt:
			boosted = false
			res.Transitions++
			clock += trans
			flaps.release(clock)
			s.Ins.transition()
			throttleSpan(e, "dtm.rpm_transition", clock-trans, clock, air)
			s.Disk.Delay(clock)
			if err := s.Disk.SetRPM(base); err != nil {
				failed = err
				e.Fail(err)
				return false
			}
		}

		comp, err := s.Disk.Serve(r)
		if err != nil {
			if errors.Is(err, disksim.ErrDiskFailed) {
				// The drive died mid-run: end the stream gracefully.
				res.DiskFailed = true
				res.FailedAt = s.Disk.FailedAt()
				done = true
				return false
			}
			failed = err
			e.Fail(err)
			return false
		}
		if boosted {
			res.BoostedTime += comp.Finish - comp.Start
		}
		advance(comp.Finish, 1)
		mean.Add(comp.Response())
		p95.Add(comp.Response())
		res.Elapsed = comp.Finish - firstArrival
		sink.Push(comp)
		return true
	}

	if s.SampleEvery > 0 {
		eng.Every(s.SampleEvery, s.SampleEvery, func(now time.Duration) bool {
			if done && eng.Pending() == 0 {
				return false
			}
			advance(now, 0)
			return true
		})
	}
	sim.Chain(eng, src, func(r disksim.Request) time.Duration {
		if firstArrival < 0 {
			firstArrival = r.Arrival
		}
		return r.Arrival
	}, serve, func() { done = true })
	if err := eng.Run(); err != nil {
		return RampResult{}, err
	}
	if failed != nil {
		return RampResult{}, failed
	}
	res.MeanResponseMillis = mean.Mean()
	res.P95ResponseMillis = p95.Value()
	res.MaxAirTemp = maxT
	res.Flaps = flaps.flaps
	res.TimeOverThreshold = over.over
	res.Retries = s.Disk.Retries()
	res.Remaps = s.Disk.Remapped()
	return res, nil
}

// RunStream services requests pulled lazily from src under the level-walking
// policy, pushing completions to sink. The source must yield requests in
// nondecreasing arrival order. The returned result's P95ResponseMillis is a
// P² estimate; Run reports the exact order statistic instead.
func (p *DRPM) RunStream(eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (DRPMResult, error) {
	if p.Disk == nil || p.Thermal == nil {
		return DRPMResult{}, fmt.Errorf("dtm: DRPM needs a disk and a thermal model")
	}
	if len(p.Levels) < 2 {
		return DRPMResult{}, fmt.Errorf("dtm: DRPM needs at least 2 levels, have %d", len(p.Levels))
	}
	levels := append([]units.RPM(nil), p.Levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	level := -1
	for i, l := range levels {
		if l == p.Disk.RPM() {
			level = i
			break
		}
	}
	if level < 0 {
		return DRPMResult{}, fmt.Errorf("dtm: disk speed %v is not a configured level", p.Disk.RPM())
	}
	if eng == nil {
		eng = sim.NewEngine()
	}

	amb := p.ambient()
	start0 := thermal.Uniform(amb)
	if p.Initial != nil {
		start0 = *p.Initial
	}
	tr := p.Thermal.NewTransient(start0)
	clock := time.Duration(0)

	res := DRPMResult{TimeAtLevel: make(map[units.RPM]time.Duration, len(levels))}
	var mean stats.Running
	p95 := stats.MustP2(0.95)
	maxT := start0.Air

	advance := func(to time.Duration, duty float64) {
		if to > clock {
			d := to - clock
			tr.Advance(thermal.Load{RPM: levels[level], VCMDuty: duty, Ambient: amb}, d)
			res.TimeAtLevel[levels[level]] += d
			clock = to
		}
		a := tr.State().Air
		p.Ins.noteTemp(a)
		if a > maxT {
			maxT = a
		}
	}

	var failed error
	done := false

	serve := func(e *sim.Engine, r disksim.Request) bool {
		start := r.Arrival
		if rt := p.Disk.ReadyTime(); rt > start {
			start = rt
		}
		advance(start, 0)

		// Walk the ladder between requests.
		switch air := tr.State().Air; {
		case air >= p.stepDownAt() && level > 0:
			level--
			res.Transitions++
			clock += p.transition()
			p.Ins.transition()
			throttleSpan(e, "dtm.rpm_transition", clock-p.transition(), clock, air)
			p.Disk.Delay(clock)
			if err := p.Disk.SetRPM(levels[level]); err != nil {
				failed = err
				e.Fail(err)
				return false
			}
		case air <= p.stepUpBelow() && level < len(levels)-1:
			level++
			res.Transitions++
			clock += p.transition()
			p.Ins.transition()
			throttleSpan(e, "dtm.rpm_transition", clock-p.transition(), clock, air)
			p.Disk.Delay(clock)
			if err := p.Disk.SetRPM(levels[level]); err != nil {
				failed = err
				e.Fail(err)
				return false
			}
		}

		comp, err := p.Disk.Serve(r)
		if err != nil {
			failed = err
			e.Fail(err)
			return false
		}
		advance(comp.Finish, 1)
		mean.Add(comp.Response())
		p95.Add(comp.Response())
		if comp.Finish > res.Elapsed {
			res.Elapsed = comp.Finish
		}
		sink.Push(comp)
		return true
	}

	if p.SampleEvery > 0 {
		eng.Every(p.SampleEvery, p.SampleEvery, func(now time.Duration) bool {
			if done && eng.Pending() == 0 {
				return false
			}
			advance(now, 0)
			return true
		})
	}
	sim.Chain(eng, src, func(r disksim.Request) time.Duration { return r.Arrival },
		serve, func() { done = true })
	if err := eng.Run(); err != nil {
		return DRPMResult{}, err
	}
	if failed != nil {
		return DRPMResult{}, failed
	}

	res.MeanResponseMillis = mean.Mean()
	res.P95ResponseMillis = p95.Value()
	res.MaxAirTemp = maxT
	return res, nil
}

// RunStream services requests pulled lazily from src under the escalation
// ladder, pushing completions to sink. The source must yield requests in
// nondecreasing arrival order. A disk failure raised by the fault injector
// ends the stream gracefully (DiskFailed set, completions cover the
// requests before the failure), matching Run.
func (e *Escalation) RunStream(eng *sim.Engine, src sim.Source[disksim.Request], sink sim.Sink[disksim.Completion]) (EscalationResult, error) {
	if e.Disk == nil || e.Thermal == nil {
		return EscalationResult{}, fmt.Errorf("dtm: escalation needs a disk and a thermal model")
	}
	levels := e.Levels
	if len(levels) == 0 {
		levels = []units.RPM{e.Disk.RPM()}
	}
	if levels[0] != e.Disk.RPM() {
		return EscalationResult{}, fmt.Errorf("dtm: level 0 (%v) must be the disk's service speed (%v)", levels[0], e.Disk.RPM())
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] >= levels[i-1] {
			return EscalationResult{}, fmt.Errorf("dtm: levels must descend, got %v after %v", levels[i], levels[i-1])
		}
	}
	if eng == nil {
		eng = sim.NewEngine()
	}
	stepEngage, stepRelease, thrEngage, thrRelease, offEngage, offRelease := e.stageLines()
	amb := e.ambientTemp()

	start0 := thermal.Uniform(amb)
	if e.Initial != nil {
		start0 = *e.Initial
	}
	tr := e.Thermal.NewTransient(start0)
	clock := time.Duration(0)

	if e.Faults != nil {
		e.Faults.Temp = func(time.Duration) units.Celsius { return tr.State().Air }
		e.Disk.SetFaults(e.Faults)
		defer e.Disk.SetFaults(nil)
	}

	level := 0 // index into levels
	load := func(duty float64) thermal.Load {
		return thermal.Load{RPM: levels[level], VCMDuty: duty, Ambient: amb}
	}
	advance := func(to time.Duration, duty float64) {
		if to > clock {
			tr.Advance(load(duty), to-clock)
			clock = to
		}
	}

	var res EscalationResult
	var mean stats.Running
	p95 := stats.MustP2(0.95)
	maxT := start0.Air
	overAt := e.OverAt
	if overAt == 0 {
		overAt = thermal.Envelope
	}
	over := overTracker{limit: overAt}
	fw := e.flapWindow()
	stepFlaps := flapTracker{window: fw}
	thrFlaps := flapTracker{window: fw}
	offFlaps := flapTracker{window: fw}
	offCool := func(s thermal.State) bool { return s.Air <= offRelease }
	thrCool := func(s thermal.State) bool { return s.Air <= thrRelease }
	note := func() {
		t := tr.State().Air
		e.Ins.noteTemp(t)
		over.observe(clock, t)
		if t > maxT {
			maxT = t
		}
	}

	var failed error
	firstArrival := time.Duration(-1)
	var lastFinish time.Duration
	done := false

	serve := func(en *sim.Engine, r disksim.Request) bool {
		startAt := r.Arrival
		if rt := e.Disk.ReadyTime(); rt > startAt {
			startAt = rt
		}
		advance(startAt, 0)
		note()

		// Escalate, hottest stage first; each stage leaves the drive cool
		// enough that the next check falls through.
		air := tr.State().Air
		if air >= offEngage {
			// Stage 3: spin down and go offline until cooled.
			res.Offlines++
			offFlaps.engage(clock)
			trans := e.spinTransition()
			pause, _ := tr.AdvanceUntil(
				thermal.Load{RPM: 0, VCMDuty: 0, Ambient: amb},
				offlineCoolLimit, offCool)
			pause += 2 * trans // spin-down and spin-up
			clock += pause
			res.OfflineTime += pause
			e.Ins.offline(pause)
			throttleSpan(en, "dtm.offline", clock-pause, clock, tr.State().Air)
			e.Disk.Delay(clock)
			air = tr.State().Air
			over.observe(clock, air)
			offFlaps.release(clock)
		}
		if air >= thrEngage {
			// Stage 2: VCM-off throttling at the current spindle speed.
			res.Throttles++
			thrFlaps.engage(clock)
			pause, _ := tr.AdvanceUntil(load(0), coolLimit, thrCool)
			clock += pause
			res.ThrottledTime += pause
			e.Ins.throttle(pause)
			throttleSpan(en, "dtm.throttle", clock-pause, clock, tr.State().Air)
			e.Disk.Delay(clock)
			air = tr.State().Air
			over.observe(clock, air)
			thrFlaps.release(clock)
		}
		switch {
		case air >= stepEngage && level < len(levels)-1:
			// Stage 1: one spindle step down.
			level++
			res.StepDowns++
			stepFlaps.engage(clock)
			clock += e.spinTransition()
			e.Ins.transition()
			throttleSpan(en, "dtm.rpm_transition", clock-e.spinTransition(), clock, air)
			e.Disk.Delay(clock)
			if err := e.Disk.SetRPM(levels[level]); err != nil {
				failed = err
				en.Fail(err)
				return false
			}
		case air <= stepRelease && level > 0:
			// De-escalate one step once the drive has cooled.
			level--
			e.Ins.transition()
			clock += e.spinTransition()
			e.Disk.Delay(clock)
			if err := e.Disk.SetRPM(levels[level]); err != nil {
				failed = err
				en.Fail(err)
				return false
			}
			stepFlaps.release(clock)
		}

		comp, err := e.Disk.Serve(r)
		if err != nil {
			if errors.Is(err, disksim.ErrDiskFailed) {
				// The drive died mid-run: end the stream gracefully.
				res.DiskFailed = true
				res.FailedAt = e.Disk.FailedAt()
				done = true
				return false
			}
			failed = err
			en.Fail(err)
			return false
		}
		advance(comp.Finish, 1)
		note()
		mean.Add(comp.Response())
		p95.Add(comp.Response())
		lastFinish = comp.Finish
		sink.Push(comp)
		return true
	}

	if e.SampleEvery > 0 {
		eng.Every(e.SampleEvery, e.SampleEvery, func(now time.Duration) bool {
			if done && eng.Pending() == 0 {
				return false
			}
			advance(now, 0)
			note()
			return true
		})
	}
	sim.Chain(eng, src, func(r disksim.Request) time.Duration {
		if firstArrival < 0 {
			firstArrival = r.Arrival
		}
		return r.Arrival
	}, serve, func() { done = true })
	if err := eng.Run(); err != nil {
		return EscalationResult{}, err
	}
	if failed != nil {
		return EscalationResult{}, failed
	}

	res.MeanResponseMillis = mean.Mean()
	res.P95ResponseMillis = p95.Value()
	res.MaxAirTemp = maxT
	res.Flaps = stepFlaps.flaps + thrFlaps.flaps + offFlaps.flaps
	res.TimeOverThreshold = over.over
	res.Retries = e.Disk.Retries()
	res.Remaps = e.Disk.Remapped()
	if mean.N() > 0 {
		res.Elapsed = lastFinish - firstArrival
	}
	return res, nil
}
