// Package tournament runs DTM policies head-to-head: every policy × every
// workload × every fault regime on the 2005 reference drive, scored into a
// deterministic table. Each cell is an independent seeded simulation — all
// policies inside a cell replay the identical request stream — so cells fan
// out over internal/parallel in fixed windows and are merged back in
// enumeration order, making the table (and anything streamed from it)
// byte-identical at every worker count. The paper argues for DTM by
// simulating regimes and comparing them; this package is that methodology
// turned into a subsystem.
package tournament

import (
	"context"
	"fmt"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
)

// The entrant policies. "reactive" is the three-stage emergency ladder,
// "predictive" the trajectory controller with its reactive backstop, and
// "slack-ramp" the two-speed boost policy.
const (
	PolicyReactive   = "reactive"
	PolicyPredictive = "predictive"
	PolicySlackRamp  = "slack-ramp"
)

// The regimes: a clean drive, and one with the temperature-coupled fault
// injector (off-track retries plus the doubling-law hazard) installed.
const (
	RegimeClean = "clean"
	RegimeFault = "fault"
)

// DefaultPolicies and DefaultRegimes are the full head-to-head bracket.
var (
	DefaultPolicies = []string{PolicyReactive, PolicyPredictive, PolicySlackRamp}
	DefaultRegimes  = []string{RegimeClean, RegimeFault}
)

// Config parameterises a tournament.
type Config struct {
	// Policies are the entrants, in table order (empty = DefaultPolicies).
	Policies []string

	// Workloads are trace workload names (empty = all five paper
	// workloads).
	Workloads []string

	// Regimes selects clean and/or fault cells (empty = DefaultRegimes).
	Regimes []string

	// Requests is the per-cell request count (0 = 4000).
	Requests int

	// Seed derives every cell's request stream and fault injector
	// (0 = 11, the policy comparison's historic seed).
	Seed int64

	// LeadTime is the predictive controller's horizon (0 = its default).
	LeadTime time.Duration

	// LoadScale multiplies each workload's per-disk arrival rate
	// (0 = 1: the workloads' own rates, which keep every cell's queue
	// stable so the score reflects the policy rather than saturation).
	LoadScale float64

	// Workers bounds the parallel cell fan-out (0 = 1).
	Workers int

	// Registry optionally instruments the controllers (per-policy DTM
	// metric sets). Counters merge order-free, so totals stay
	// deterministic at any worker count.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if len(c.Policies) == 0 {
		c.Policies = DefaultPolicies
	}
	if len(c.Workloads) == 0 {
		for _, w := range trace.Workloads {
			c.Workloads = append(c.Workloads, w.Name)
		}
	}
	if len(c.Regimes) == 0 {
		c.Regimes = DefaultRegimes
	}
	if c.Requests == 0 {
		c.Requests = 4000
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.LoadScale == 0 {
		c.LoadScale = 1
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// Validate rejects unknown names and unusable sizes. It validates the
// post-default view, so a zero Config is valid.
func (c Config) Validate() error {
	c = c.withDefaults()
	for _, p := range c.Policies {
		switch p {
		case PolicyReactive, PolicyPredictive, PolicySlackRamp:
		default:
			return fmt.Errorf("tournament: unknown policy %q", p)
		}
	}
	for _, r := range c.Regimes {
		switch r {
		case RegimeClean, RegimeFault:
		default:
			return fmt.Errorf("tournament: unknown regime %q", r)
		}
	}
	for _, name := range c.Workloads {
		if _, err := trace.WorkloadByName(name); err != nil {
			return err
		}
	}
	if c.Requests < 0 {
		return fmt.Errorf("tournament: negative request count %d", c.Requests)
	}
	if c.LoadScale < 0 {
		return fmt.Errorf("tournament: negative load scale %v", c.LoadScale)
	}
	if c.Workers < 0 {
		return fmt.Errorf("tournament: negative workers %d", c.Workers)
	}
	return nil
}

// Cells is the table size after defaults.
func (c Config) Cells() int {
	c = c.withDefaults()
	return len(c.Policies) * len(c.Workloads) * len(c.Regimes)
}

// Cell is one (policy, workload, regime) result row.
type Cell struct {
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	Regime   string `json:"regime"`
	Requests int    `json:"requests"`

	MeanMS        float64 `json:"mean_ms"`
	P95MS         float64 `json:"p95_ms"`
	MaxAirC       float64 `json:"max_air_c"`
	TimeOverMS    float64 `json:"time_over_ms"`
	ThrottledMS   float64 `json:"throttled_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`

	ThrottleEvents int `json:"throttle_events"`
	EarlyThrottles int `json:"early_throttles"`
	Transitions    int `json:"transitions"`
	Flaps          int `json:"flaps"`

	Retries    int64   `json:"retries"`
	DiskFailed bool    `json:"disk_failed"`
	FailedAtMS float64 `json:"failed_at_ms,omitempty"`

	Score float64 `json:"score"`
}

// Score is the deterministic figure of merit, lower is better:
//
//	mean_ms + 0.25·p95_ms          (latency)
//	+ 2·time_over_threshold_s      (thermal violation)
//	+ 0.5·flaps + 0.02·episodes    (stability)
//	+ 1000 if the drive died       (reliability)
//
// The weights are fixed constants of the package — the table is a contract,
// so changing them is a breaking change to the golden artifacts.
func (c Cell) score() float64 {
	s := c.MeanMS + 0.25*c.P95MS +
		2*(c.TimeOverMS/1000) +
		0.5*float64(c.Flaps) + 0.02*float64(c.ThrottleEvents)
	if c.DiskFailed {
		s += 1000
	}
	return s
}

// Winner records the best-scoring policy of one (workload, regime) group.
type Winner struct {
	Workload string  `json:"workload"`
	Regime   string  `json:"regime"`
	Policy   string  `json:"policy"`
	Score    float64 `json:"score"`
}

// PolicyTotal aggregates one policy across the whole bracket.
type PolicyTotal struct {
	Policy         string  `json:"policy"`
	Wins           int     `json:"wins"`
	MeanMS         float64 `json:"mean_ms"`      // mean of cell means
	TimeOverMS     float64 `json:"time_over_ms"` // total
	ThrottleEvents int     `json:"throttle_events"`
	Flaps          int     `json:"flaps"`
	Score          float64 `json:"score"` // total
}

// Summary is the tournament-wide reduction. Slices are in deterministic
// order: Policies in configuration order, Winners in cell-enumeration
// order.
type Summary struct {
	Cells    int           `json:"cells"`
	Requests int           `json:"requests"` // per cell
	Policies []PolicyTotal `json:"policies"`
	Winners  []Winner      `json:"winners"`
	Overall  string        `json:"overall"` // most wins, ties to table order
}

// cellsPerWindow bounds in-flight cells: one workload's full bracket per
// window at the default configuration.
const cellsPerWindow = 6

type cellSpec struct {
	workload  trace.Params
	regime    string
	regimeIdx int
	policy    string
}

// cellSeed derives the request-stream seed for one (workload, regime)
// group. Every policy in the group shares it, so the comparison is over
// identical arrivals; the fault injector draws from an offset of the same
// seed.
func cellSeed(base, workloadSeed int64, regimeIdx int) int64 {
	return base*1000003 + workloadSeed*8191 + int64(regimeIdx)*131
}

// Run executes the tournament, invoking onCell (which may be nil) for every
// finished cell in enumeration order — workload-major, then regime, then
// policy — and returns the summary. Cells fan out over internal/parallel in
// fixed windows; results are merged in input order, so the emitted stream
// and the summary are byte-identical at every worker count.
func Run(ctx context.Context, cfg Config, onCell func(Cell) error) (Summary, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Summary{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var specs []cellSpec
	for _, name := range cfg.Workloads {
		w, err := trace.WorkloadByName(name)
		if err != nil {
			return Summary{}, err
		}
		for ri, regime := range cfg.Regimes {
			for _, policy := range cfg.Policies {
				specs = append(specs, cellSpec{workload: w, regime: regime, regimeIdx: ri, policy: policy})
			}
		}
	}

	ins := make(map[string]*dtm.Instruments, len(cfg.Policies))
	for _, p := range cfg.Policies {
		ins[p] = dtm.NewInstruments(cfg.Registry, p, "engine", "tournament")
	}

	sum := Summary{Cells: len(specs), Requests: cfg.Requests}
	totals := make(map[string]*PolicyTotal, len(cfg.Policies))
	for _, p := range cfg.Policies {
		t := &PolicyTotal{Policy: p}
		totals[p] = t
	}

	// The winner of the (workload, regime) group currently being emitted;
	// groups close on enumeration-order boundaries, never mid-window
	// issues, because emission below is strictly in order.
	var open *Winner
	groupCells := 0
	closeGroup := func() {
		if open != nil {
			totals[open.Policy].Wins++
			sum.Winners = append(sum.Winners, *open)
			open = nil
			groupCells = 0
		}
	}

	for w0 := 0; w0 < len(specs); w0 += cellsPerWindow {
		w1 := w0 + cellsPerWindow
		if w1 > len(specs) {
			w1 = len(specs)
		}
		window := specs[w0:w1]
		results, err := parallel.MapCtx(ctx, cfg.Workers, window, func(_ int, s cellSpec) (Cell, error) {
			return runCell(ctx, cfg, s, ins[s.policy])
		})
		if err != nil {
			return Summary{}, err
		}
		for _, cell := range results {
			t := totals[cell.Policy]
			t.MeanMS += cell.MeanMS
			t.TimeOverMS += cell.TimeOverMS
			t.ThrottleEvents += cell.ThrottleEvents
			t.Flaps += cell.Flaps
			t.Score += cell.Score

			if groupCells == len(cfg.Policies) {
				closeGroup()
			}
			if open == nil {
				open = &Winner{Workload: cell.Workload, Regime: cell.Regime, Policy: cell.Policy, Score: cell.Score}
			} else if cell.Score < open.Score {
				open.Policy, open.Score = cell.Policy, cell.Score
			}
			groupCells++

			if onCell != nil {
				if err := onCell(cell); err != nil {
					return Summary{}, err
				}
			}
		}
	}
	closeGroup()

	cellsPerPolicy := len(sum.Winners) // one group per (workload, regime)
	for _, p := range cfg.Policies {
		t := totals[p]
		if cellsPerPolicy > 0 {
			t.MeanMS /= float64(cellsPerPolicy)
		}
		sum.Policies = append(sum.Policies, *t)
		if sum.Overall == "" || t.Wins > totals[sum.Overall].Wins {
			sum.Overall = p
		}
	}
	return sum, nil
}

// runCell executes one policy on one workload under one regime. Every
// entrant runs the 2005 reference drive from its own speed's worst-case
// steady state — the paper's average-case-design premise — against the
// cell's shared request stream.
func runCell(ctx context.Context, cfg Config, s cellSpec, ins *dtm.Instruments) (Cell, error) {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		return Cell{}, err
	}
	th, err := thermal.New(geom)
	if err != nil {
		return Cell{}, err
	}

	seed := cellSeed(cfg.Seed, s.workload.Seed, s.regimeIdx)
	src := Source(s.workload, layout.TotalSectors(), cfg.Requests, cfg.LoadScale, seed)
	var inj *dtm.ThermalFaults
	if s.regime == RegimeFault {
		inj = dtm.NewThermalFaults(dtm.OffTrackModel{}, reliability.Default(), nil, seed+1)
	}

	newDisk := func(rpm units.RPM) (*disksim.Disk, error) {
		return disksim.New(disksim.Config{Layout: layout, RPM: rpm})
	}

	cell := Cell{Policy: s.policy, Workload: s.workload.Name, Regime: s.regime, Requests: cfg.Requests}
	sink := sim.Discard[disksim.Completion]()

	// The hot-speed entrants open in a thermal emergency: sustained
	// worst-case load has driven the drive to its worst-case steady state,
	// 3.5 °C over the envelope — the exact exposure the paper's
	// average-case-design argument accepts and asks DTM to absorb. Each
	// cell scores how a policy recovers (latency paid, time spent over the
	// envelope, control-loop stability) while serving the cell's workload.
	// A below-envelope start is not an alternative here: at this drive's
	// ~8-minute thermal time constant and the workloads' real utilisation,
	// no cell-length run heats across the envelope on its own.
	hot := th.SteadyState(thermal.WorstCase(hotRPM))

	switch s.policy {
	case PolicyReactive:
		disk, err := newDisk(hotRPM)
		if err != nil {
			return Cell{}, err
		}
		esc := dtm.Escalation{
			Disk:    disk,
			Thermal: th,
			Levels:  []units.RPM{hotRPM, 21000, 18000, envelopeRPM},
			Initial: &hot,
			Faults:  inj,
			Ins:     ins,
		}
		res, err := esc.RunStreamCtx(ctx, sim.NewEngine(), src, sink)
		if err != nil {
			return Cell{}, err
		}
		cell.MeanMS = res.MeanResponseMillis
		cell.P95MS = res.P95ResponseMillis
		cell.MaxAirC = float64(res.MaxAirTemp)
		cell.TimeOverMS = durMS(res.TimeOverThreshold)
		cell.ThrottledMS = durMS(res.ThrottledTime + res.OfflineTime)
		cell.ThrottleEvents = res.Throttles + res.Offlines + res.StepDowns
		cell.Transitions = res.StepDowns
		cell.Flaps = res.Flaps
		cell.Retries = res.Retries
		cell.DiskFailed = res.DiskFailed
		cell.FailedAtMS = durMS(res.FailedAt)
		cell.ThroughputRPS = throughput(cfg.Requests, res.Elapsed)
	case PolicyPredictive:
		disk, err := newDisk(hotRPM)
		if err != nil {
			return Cell{}, err
		}
		// Dual-speed throttling, so the entrant has the same cooling lever
		// as the reactive ladder — VCM-only pauses at full RPM barely cool
		// near the worst-case steady state and would bury the predictor's
		// advantage under enormous pause times.
		// The bands are shallower than the package defaults: at this
		// drive's ~8-minute thermal time constant a 3.5 °C cool-down is a
		// multi-minute pause, so the tournament trades cooling depth for
		// pause time. The backstop's release (1.5 °C under the envelope)
		// sits below the predictive engage line (within 0.5 °C of it), so
		// coming out of a backstop pause cannot re-arm the early stage on
		// request-scale micro-transients.
		ctl := dtm.PredictiveController{
			Disk:       disk,
			Thermal:    th,
			Mode:       dtm.VCMAndRPM,
			LowRPM:     envelopeRPM,
			LeadTime:   cfg.LeadTime,
			Predictive: dtm.Band{Engage: 0.5, Release: 2},
			Reactive:   dtm.Band{Engage: 0.05, Release: 1.5},
			Initial:    &hot,
			Faults:     inj,
			Ins:        ins,
		}
		res, err := ctl.RunStreamCtx(ctx, sim.NewEngine(), src, sink)
		if err != nil {
			return Cell{}, err
		}
		cell.MeanMS = res.MeanResponseMillis
		cell.P95MS = res.P95ResponseMillis
		cell.MaxAirC = float64(res.MaxAirTemp)
		cell.TimeOverMS = durMS(res.TimeOverThreshold)
		cell.ThrottledMS = durMS(res.ThrottledTime)
		cell.ThrottleEvents = res.ThrottleEvents()
		cell.EarlyThrottles = res.EarlyThrottles
		cell.Flaps = res.Flaps
		cell.Retries = res.Retries
		cell.DiskFailed = res.DiskFailed
		cell.FailedAtMS = durMS(res.FailedAt)
		cell.ThroughputRPS = throughput(cfg.Requests, res.Elapsed)
	case PolicySlackRamp:
		disk, err := newDisk(envelopeRPM)
		if err != nil {
			return Cell{}, err
		}
		warm := th.SteadyState(thermal.WorstCase(envelopeRPM))
		ramp := dtm.SlackRamp{
			Disk:     disk,
			Thermal:  th,
			BoostRPM: hotRPM,
			Initial:  &warm,
			Faults:   inj,
			Ins:      ins,
		}
		res, err := ramp.RunStreamCtx(ctx, sim.NewEngine(), src, sink)
		if err != nil {
			return Cell{}, err
		}
		cell.MeanMS = res.MeanResponseMillis
		cell.P95MS = res.P95ResponseMillis
		cell.MaxAirC = float64(res.MaxAirTemp)
		cell.TimeOverMS = durMS(res.TimeOverThreshold)
		cell.ThrottleEvents = res.Transitions
		cell.Transitions = res.Transitions
		cell.Flaps = res.Flaps
		cell.Retries = res.Retries
		cell.DiskFailed = res.DiskFailed
		cell.FailedAtMS = durMS(res.FailedAt)
		cell.ThroughputRPS = throughput(cfg.Requests, res.Elapsed)
	default:
		return Cell{}, fmt.Errorf("tournament: unknown policy %q", s.policy)
	}
	cell.Score = cell.score()
	return cell, nil
}

// The 2005 reference drive's two design points: the paper's average-case
// speed (whose worst case violates the envelope) and the envelope-design
// speed — the same pair cmd/dtm's policy comparison uses.
const (
	hotRPM      units.RPM = 24534
	envelopeRPM units.RPM = 15020
)

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func throughput(n int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}
