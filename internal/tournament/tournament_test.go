package tournament

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config should be valid: %v", err)
	}
	cases := []Config{
		{Policies: []string{"nonsense"}},
		{Regimes: []string{"hurricane"}},
		{Workloads: []string{"no-such-trace"}},
		{Requests: -1},
		{LoadScale: -2},
		{Workers: -1},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should be rejected: %+v", i, cfg)
		}
	}
	if got := (Config{}).Cells(); got != 30 {
		t.Errorf("default bracket = %d cells, want 30 (3 policies × 5 workloads × 2 regimes)", got)
	}
}

func TestSourceDeterministicAndInBounds(t *testing.T) {
	w, err := trace.WorkloadByName("TPC-C")
	if err != nil {
		t.Fatal(err)
	}
	const total = int64(1 << 22)
	digest := func() uint64 {
		h := fnv.New64a()
		src := Source(w, total, 500, 2, 77)
		last := time.Duration(-1)
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			if r.Arrival < last {
				t.Fatalf("arrivals not monotone: %v after %v", r.Arrival, last)
			}
			last = r.Arrival
			if r.LBN < 0 || r.LBN+int64(r.Sectors) > total {
				t.Fatalf("request out of bounds: lbn=%d sectors=%d", r.LBN, r.Sectors)
			}
			if r.Sectors < 1 || r.Sectors > maxRequestSectors {
				t.Fatalf("bad size %d", r.Sectors)
			}
			fmt.Fprintf(h, "%d %d %d %d %v\n", r.ID, r.Arrival, r.LBN, r.Sectors, r.Write)
		}
		return h.Sum64()
	}
	if digest() != digest() {
		t.Error("same arguments should replay the identical stream")
	}
}

// tinyConfig keeps unit runs fast while still engaging every policy.
func tinyConfig() Config {
	return Config{
		Workloads: []string{"TPC-C", "Search-Engine"},
		Requests:  800,
		Workers:   2,
	}
}

func runDigest(t *testing.T, cfg Config) (string, Summary) {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	sum, err := Run(context.Background(), cfg, func(c Cell) error { return enc.Encode(c) })
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(sum); err != nil {
		t.Fatal(err)
	}
	return b.String(), sum
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 1
	one, sumOne := runDigest(t, cfg)
	cfg.Workers = 8
	eight, sumEight := runDigest(t, cfg)
	if one != eight {
		t.Fatalf("tournament table differs between workers 1 and 8:\n--- w1 ---\n%s--- w8 ---\n%s", one, eight)
	}
	if sumOne.Overall != sumEight.Overall {
		t.Errorf("overall winner differs: %q vs %q", sumOne.Overall, sumEight.Overall)
	}
}

func TestRunShapeAndScoring(t *testing.T) {
	cfg := tinyConfig()
	var cells []Cell
	sum, err := Run(context.Background(), cfg, func(c Cell) error {
		cells = append(cells, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := cfg.Cells()
	if len(cells) != wantCells || sum.Cells != wantCells {
		t.Fatalf("emitted %d cells, summary says %d, want %d", len(cells), sum.Cells, wantCells)
	}
	// Enumeration order: workload-major, then regime, then policy.
	i := 0
	for _, w := range cfg.Workloads {
		for _, regime := range DefaultRegimes {
			for _, policy := range DefaultPolicies {
				c := cells[i]
				if c.Workload != w || c.Regime != regime || c.Policy != policy {
					t.Fatalf("cell %d out of order: got (%s, %s, %s), want (%s, %s, %s)",
						i, c.Workload, c.Regime, c.Policy, w, regime, policy)
				}
				i++
			}
		}
	}
	groups := len(cfg.Workloads) * len(DefaultRegimes)
	if len(sum.Winners) != groups {
		t.Fatalf("%d winners, want %d", len(sum.Winners), groups)
	}
	wins := 0
	for _, pt := range sum.Policies {
		wins += pt.Wins
	}
	if wins != groups {
		t.Errorf("wins sum to %d, want %d", wins, groups)
	}
	for _, c := range cells {
		if c.Score != c.score() {
			t.Errorf("cell (%s,%s,%s): stored score %v != recomputed %v",
				c.Workload, c.Regime, c.Policy, c.Score, c.score())
		}
		if c.MeanMS <= 0 || c.ThroughputRPS <= 0 {
			t.Errorf("cell (%s,%s,%s): degenerate stats %+v", c.Workload, c.Regime, c.Policy, c)
		}
	}
	// Every winner must be the group's minimum score.
	for g, w := range sum.Winners {
		group := cells[g*len(DefaultPolicies) : (g+1)*len(DefaultPolicies)]
		for _, c := range group {
			if c.Score < w.Score {
				t.Errorf("group %d: winner %s (%.3f) beaten by %s (%.3f)",
					g, w.Policy, w.Score, c.Policy, c.Score)
			}
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tinyConfig(), nil); err == nil {
		t.Error("cancelled context should fail the run")
	}
}

func TestRunWithRegistryCountsControlActions(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := tinyConfig()
	cfg.Registry = reg
	if _, err := Run(context.Background(), cfg, nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var throttles int64
	for _, s := range snap {
		if s.Name == "dtm_throttle_events_total" {
			throttles += s.Count
		}
	}
	if throttles == 0 {
		t.Error("hot-start tournament should record throttle events on the registry")
	}
}

// TestFaultRegimeInjects pins the regimes apart: fault cells must observe
// retries somewhere in the bracket, clean cells never.
func TestFaultRegimeInjects(t *testing.T) {
	cfg := tinyConfig()
	var cleanRetries, faultRetries int64
	if _, err := Run(context.Background(), cfg, func(c Cell) error {
		if c.Regime == RegimeClean {
			cleanRetries += c.Retries
		} else {
			faultRetries += c.Retries
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cleanRetries != 0 {
		t.Errorf("clean regime recorded %d retries", cleanRetries)
	}
	if faultRetries == 0 {
		t.Error("fault regime recorded no retries despite over-envelope starts")
	}
}
