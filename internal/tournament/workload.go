package tournament

import (
	"math/rand"
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// maxRequestSectors bounds one request so a pathological geometric draw
// cannot exceed the layout.
const maxRequestSectors = 1024

// Source yields workload w projected onto a single drive, lazily and
// deterministically: Poisson arrivals at the workload's per-disk rate
// scaled by loadScale, geometric request sizes around the workload's mean,
// reads per ReadFraction, and sequential continuation per SeqFraction. The
// sequence depends only on (w, totalSectors, n, loadScale, seed), so every
// policy in a tournament cell replays identical requests without the trace
// being materialized.
func Source(w trace.Params, totalSectors int64, n int, loadScale float64, seed int64) sim.Source[disksim.Request] {
	rate := w.ArrivalRate / float64(w.Disks) * loadScale
	contP := 0.0
	if w.MeanSectors > 1 {
		contP = float64(w.MeanSectors-1) / float64(w.MeanSectors)
	}
	rng := rand.New(rand.NewSource(seed))
	now := 0.0
	i := 0
	lastEnd := int64(-1)
	return sim.SourceFunc[disksim.Request](func() (disksim.Request, bool) {
		if i >= n {
			return disksim.Request{}, false
		}
		now += rng.ExpFloat64() / rate
		sectors := 1
		for rng.Float64() < contP && sectors < maxRequestSectors {
			sectors++
		}
		var lbn int64
		if lastEnd >= 0 && rng.Float64() < w.SeqFraction {
			lbn = lastEnd
			if lbn+int64(sectors) >= totalSectors {
				lbn = 0
			}
		} else {
			lbn = rng.Int63n(totalSectors - int64(sectors) - 1)
		}
		r := disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     lbn,
			Sectors: sectors,
			Write:   rng.Float64() >= w.ReadFraction,
		}
		lastEnd = lbn + int64(sectors)
		i++
		return r, true
	})
}
