// Saturation ramp: open-loop arrival staircase that finds the daemon's
// throughput knee. Unlike the default closed-loop mode — where a semaphore
// means a slow server is offered less load — each stage here submits at a
// fixed offered rate regardless of how the server is doing (goroutine per
// arrival, no concurrency gate), which is the only way to observe the knee:
// the highest offered rate the daemon absorbs with zero refusals, zero
// failures and completed throughput within -sustain-frac of offered. The
// knee's sustained jobs/s and p99 submit-to-done latency are reported, and
// -bench-out writes them as a go-bench line so cmd/benchdiff can gate them
// against BENCH_serve.json like any other benchmark.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// rampConfig carries the staircase shape from flags.
type rampConfig struct {
	start       float64       // first stage offered rate, jobs/s
	factor      float64       // offered-rate multiplier between stages
	stages      int           // maximum stages before stopping
	stageLen    time.Duration // submission window per stage
	sustainFrac float64       // achieved/offered floor for "sustained"
	benchOut    string        // bench-format output path ("" = none)
	retry       bool          // use idempotency keys per job
	keyPrefix   string
}

// stageResult is what one open-loop stage measured.
type stageResult struct {
	offered               float64 // jobs/s submitted at
	achieved              float64 // done / elapsed-including-drain, jobs/s
	submitted             int
	done, failed, refused int64
	p99                   time.Duration
	elapsed               time.Duration
}

// sustained reports whether the stage held the offered rate: nothing
// refused, nothing failed, and completed throughput within frac of offered.
// The drain tail after the submission window is inside elapsed, so a server
// that queues the stage and limps through it afterwards does not pass.
func (s stageResult) sustained(frac float64) bool {
	return s.refused == 0 && s.failed == 0 && s.achieved >= frac*s.offered
}

// runRamp climbs the offered-rate staircase until a stage fails to sustain
// (the knee) or stages run out, then reports the last sustained stage.
func runRamp(ctx context.Context, c *client.Client, spec server.Spec, cfg rampConfig) error {
	if cfg.start <= 0 || cfg.factor <= 1 || cfg.stages < 1 {
		return fmt.Errorf("ramp needs -ramp-start > 0, -ramp-factor > 1, -ramp-stages >= 1")
	}
	var knee *stageResult
	rate := cfg.start
	jobN := 0
	for s := 0; s < cfg.stages; s++ {
		res, err := runStage(ctx, c, spec, cfg, rate, &jobN)
		if err != nil {
			return err
		}
		ok := res.sustained(cfg.sustainFrac)
		verdict := "sustained"
		if !ok {
			verdict = "NOT sustained"
		}
		fmt.Printf("simload: stage %d: offered %.1f jobs/s -> achieved %.1f jobs/s (%d done, %d failed, %d refused, p99 %v) %s\n",
			s+1, res.offered, res.achieved, res.done, res.failed, res.refused,
			res.p99.Round(time.Millisecond), verdict)
		if !ok {
			break // past the knee; higher rates only fail harder
		}
		r := res
		knee = &r
		rate *= cfg.factor
	}
	if knee == nil {
		return fmt.Errorf("no stage sustained: even %.1f jobs/s is past the knee", cfg.start)
	}
	fmt.Printf("simload: knee: sustained %.2f jobs/s (offered %.1f), p99 %v over %d jobs\n",
		knee.achieved, knee.offered, knee.p99.Round(time.Millisecond), knee.done)
	if cfg.benchOut != "" {
		if err := writeBenchLine(cfg.benchOut, *knee); err != nil {
			return err
		}
		fmt.Printf("simload: wrote %s\n", cfg.benchOut)
	}
	return nil
}

// runStage offers `rate` jobs/s for the stage window, then drains: wall
// clock keeps running until every submitted job resolves, so the achieved
// rate charges a backlogged server for its queue.
func runStage(ctx context.Context, c *client.Client, spec server.Spec, cfg rampConfig, rate float64, jobN *int) (stageResult, error) {
	interval := time.Duration(float64(time.Second) / rate)
	res := stageResult{offered: rate}

	var (
		wg                    sync.WaitGroup
		done, failed, refused atomic.Int64
		mu                    sync.Mutex
		lats                  []time.Duration
	)
	launch := func(n int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := ""
			if cfg.retry {
				key = fmt.Sprintf("%s-%d", cfg.keyPrefix, n)
			}
			t0 := time.Now()
			info, err := c.SubmitAsync(ctx, spec, key)
			if err != nil {
				refused.Add(1)
				return
			}
			final, err := c.Wait(ctx, info.ID, 5*time.Millisecond)
			if err != nil || final.Status != server.StatusDone {
				failed.Add(1)
				return
			}
			lat := time.Since(t0)
			mu.Lock()
			lats = append(lats, lat)
			mu.Unlock()
			done.Add(1)
		}()
	}

	start := time.Now()
	deadline := start.Add(cfg.stageLen)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for now := start; now.Before(deadline); {
		launch(*jobN)
		*jobN++
		res.submitted++
		select {
		case now = <-tick.C:
		case <-ctx.Done():
			return res, fmt.Errorf("ramp deadline hit mid-stage (raise -timeout): %w", ctx.Err())
		}
	}
	wg.Wait() // drain: completions after the window still count, on the clock
	res.elapsed = time.Since(start)
	res.done, res.failed, res.refused = done.Load(), failed.Load(), refused.Load()
	if res.elapsed > 0 {
		res.achieved = float64(res.done) / res.elapsed.Seconds()
	}
	res.p99 = percentile99(lats)
	if ctx.Err() != nil {
		return res, fmt.Errorf("ramp deadline hit during drain (raise -timeout): %w", ctx.Err())
	}
	return res, nil
}

// percentile99 is the ceil(0.99n)-th smallest latency.
func percentile99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (99*len(lats)+99)/100 - 1
	return lats[idx]
}

// writeBenchLine records the knee in go-bench format: ns/op is the
// sustained inter-completion time (1e9 / jobs/s), with the raw rate and p99
// as extra value/unit pairs. cmd/benchdiff reads the ns/op column, so a
// throughput collapse fails the gate as a time regression.
func writeBenchLine(path string, knee stageResult) error {
	line := fmt.Sprintf("BenchmarkServeSaturation \t %d \t %.0f ns/op \t %.2f jobs/s \t %.2f p99-ms\n",
		knee.done, 1e9/knee.achieved, knee.achieved,
		float64(knee.p99)/float64(time.Millisecond))
	return os.WriteFile(path, []byte(line), 0o644)
}
