// Command simload drives a running simd with concurrent job submissions
// through the typed client, reporting how many ran to completion. It is
// the smoke-load counterpart to cmd/simd: point it at a daemon (healthy or
// being chaos-tested) and it tells you whether the service contract held.
//
// With -retry the client's robustness layer is active: exponential backoff
// with full jitter honoring Retry-After, per-job idempotency keys so a
// retried submission can never run twice, and a circuit breaker that fails
// fast while the daemon is down. Without it, every refusal is a hard error
// — useful to observe raw backpressure.
//
// With -ramp the closed loop is replaced by the open-loop saturation
// staircase in ramp.go: offered rate climbs by -ramp-factor each -stage
// window until the daemon stops sustaining it, and the knee's jobs/s and
// p99 latency are reported (and written as a bench line via -bench-out).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "simd address (host:port)")
		jobs        = flag.Int("jobs", 16, "total jobs to submit")
		concurrency = flag.Int("concurrency", 4, "concurrent submitters")
		specJSON    = flag.String("spec", "", "job spec JSON (default: a small roadmap sweep)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "overall deadline")
		retry       = flag.Bool("retry", false, "enable retries, idempotency keys and the circuit breaker")
		keyPrefix   = flag.String("key-prefix", "", "idempotency key prefix (default: derived from the clock; implies per-job keys when -retry is set)")
		seed        = flag.Int64("seed", 0, "retry-jitter seed (0 = from the clock)")

		ramp        = flag.Bool("ramp", false, "run the open-loop saturation ramp instead of a fixed job count")
		rampStart   = flag.Float64("ramp-start", 4, "ramp: first stage offered rate, jobs/s")
		rampFactor  = flag.Float64("ramp-factor", 2, "ramp: offered-rate multiplier between stages")
		rampStages  = flag.Int("ramp-stages", 6, "ramp: maximum stages")
		stageLen    = flag.Duration("stage", 4*time.Second, "ramp: submission window per stage")
		sustainFrac = flag.Float64("sustain-frac", 0.95, "ramp: achieved/offered floor for a stage to count as sustained")
		benchOut    = flag.String("bench-out", "", "ramp: write the knee as a go-bench line to this file (for cmd/benchdiff)")
	)
	flag.Parse()
	var rampCfg *rampConfig
	if *ramp {
		rampCfg = &rampConfig{
			start: *rampStart, factor: *rampFactor, stages: *rampStages,
			stageLen: *stageLen, sustainFrac: *sustainFrac, benchOut: *benchOut,
			retry: *retry, keyPrefix: *keyPrefix,
		}
	}
	if err := run(*addr, *jobs, *concurrency, *specJSON, *timeout, *retry, *keyPrefix, *seed, rampCfg); err != nil {
		fmt.Fprintln(os.Stderr, "simload:", err)
		os.Exit(1)
	}
}

func run(addr string, jobs, concurrency int, specJSON string, timeout time.Duration, retry bool, keyPrefix string, seed int64, rampCfg *rampConfig) error {
	spec := server.Spec{Type: server.TypeRoadmap, Roadmap: &server.RoadmapSpec{
		FirstYear: 2002, LastYear: 2006, PlatterSizes: []float64{2.6},
	}}
	if specJSON != "" {
		spec = server.Spec{}
		dec := json.NewDecoder(strings.NewReader(specJSON))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("bad -spec: %w", err)
		}
	}

	opts := client.Options{
		Seed: seed,
		Logf: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	}
	if !retry {
		opts.Retry = client.RetryPolicy{MaxAttempts: 1}
		opts.Breaker = client.BreakerPolicy{Threshold: -1}
	}
	if keyPrefix == "" {
		keyPrefix = fmt.Sprintf("simload-%d", time.Now().UnixNano())
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := client.New(base, opts)

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	// Ready is a deliberate single-shot probe (it must not trip the
	// breaker), so poll it here: a daemon still replaying its journal
	// answers 503 until the replay finishes.
	if err := waitReady(ctx, c, 10*time.Second); err != nil {
		return fmt.Errorf("daemon not ready: %w", err)
	}

	if rampCfg != nil {
		rampCfg.keyPrefix = keyPrefix
		return runRamp(ctx, c, spec, *rampCfg)
	}

	var done, failed, refused atomic.Int64
	start := time.Now()
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(n int) {
			defer wg.Done()
			defer func() { <-sem }()
			key := ""
			if retry {
				key = fmt.Sprintf("%s-%d", keyPrefix, n)
			}
			info, err := c.SubmitAsync(ctx, spec, key)
			if err != nil {
				refused.Add(1)
				fmt.Printf("simload: job %d refused: %v\n", n, err)
				return
			}
			final, err := c.Wait(ctx, info.ID, 25*time.Millisecond)
			if err != nil {
				failed.Add(1)
				fmt.Printf("simload: job %d (%s) lost: %v\n", n, info.ID, err)
				return
			}
			if final.Status != server.StatusDone {
				failed.Add(1)
				fmt.Printf("simload: job %d (%s) ended %s: %s\n", n, info.ID, final.Status, final.Error)
				return
			}
			done.Add(1)
		}(i)
	}
	wg.Wait()

	fmt.Printf("simload: %d/%d done, %d failed, %d refused in %v\n",
		done.Load(), jobs, failed.Load(), refused.Load(), time.Since(start).Round(time.Millisecond))
	if done.Load() != int64(jobs) {
		return fmt.Errorf("%d of %d jobs did not complete", int64(jobs)-done.Load(), jobs)
	}
	return nil
}

// waitReady polls the single-shot readiness probe until the daemon reports
// ready, budget elapses, or ctx ends. Transport errors and 503s both mean
// "keep waiting": the daemon may still be binding or replaying its journal.
func waitReady(ctx context.Context, c *client.Client, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		err := c.Ready(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return err
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return err
		}
	}
}
