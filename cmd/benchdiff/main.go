// Command benchdiff compares `go test -bench` output against the committed
// baseline files (BENCH_sim.json, BENCH_parallel.json) and fails when a
// benchmark regresses past the tolerance — the CI performance gate.
//
//	go test -run '^$' -bench . -benchmem -benchtime 3x -count 3 ./... > bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_sim.json -baseline BENCH_parallel.json bench.txt
//
// Each benchmark's best (minimum) ns/op across -count repetitions is
// compared, which filters scheduler noise the way benchstat's min column
// does; allocs/op is exact and compared directly. Regressions beyond
// -tolerance fail with a readable table; improvements are reported but
// never fail. Baseline entries the run did not execute are listed as
// skipped (CI shards run subsets), and trailing -N GOMAXPROCS suffixes are
// stripped so the same baseline serves any host width.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline is one committed BENCH_*.json file.
type baseline struct {
	Description string `json:"description"`
	Benchmarks  []struct {
		Name        string   `json:"name"`
		NsPerOp     float64  `json:"ns_per_op"`
		BytesPerOp  *float64 `json:"bytes_per_op"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// measurement is the best observed run of one benchmark name.
type measurement struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
	count       int
}

// stringList lets -baseline repeat.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var baselines stringList
	flag.Var(&baselines, "baseline", "baseline JSON file (repeatable)")
	tolerance := flag.Float64("tolerance", 0.25, "maximum relative increase in ns/op and allocs/op before failing")
	flag.Parse()
	if len(baselines) == 0 || flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline BENCH_x.json [-baseline ...] [bench-output.txt]")
		fmt.Fprintln(os.Stderr, "compares each benchmark's best-of-count (minimum) ns/op against the baseline")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	ok, err := run(os.Stdout, in, baselines, *tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(1)
	}
}

// suffixRe matches the -N GOMAXPROCS suffix go test appends to names. It
// cannot be stripped blindly: sub-benchmarks like "workers-1" also end in
// -digits, so lookup() tries the exact name first and only then the
// suffixed form.
var suffixRe = regexp.MustCompile(`^-\d+$`)

// lookup finds a baseline name in the parsed run, tolerating a GOMAXPROCS
// suffix on the measured name.
func lookup(got map[string]measurement, name string) (measurement, bool) {
	if m, ok := got[name]; ok {
		return m, true
	}
	for k, m := range got {
		if strings.HasPrefix(k, name) && suffixRe.MatchString(k[len(name):]) {
			return m, true
		}
	}
	return measurement{}, false
}

// parseBench folds bench output into best-of-count measurements per name.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		m := measurement{nsPerOp: -1}
		// After the iteration count, the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q on line %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsPerOp = v
			case "allocs/op":
				m.allocsPerOp = v
				m.hasAllocs = true
			}
		}
		if m.nsPerOp < 0 {
			continue
		}
		prev, seen := out[name]
		if !seen || m.nsPerOp < prev.nsPerOp {
			prev.nsPerOp = m.nsPerOp
		}
		if m.hasAllocs && (!prev.hasAllocs || m.allocsPerOp < prev.allocsPerOp) {
			prev.allocsPerOp, prev.hasAllocs = m.allocsPerOp, true
		}
		prev.count++
		out[name] = prev
	}
	return out, sc.Err()
}

func run(w io.Writer, in io.Reader, baselinePaths []string, tol float64) (bool, error) {
	got, err := parseBench(in)
	if err != nil {
		return false, err
	}
	if len(got) == 0 {
		return false, fmt.Errorf("no benchmark lines in input")
	}

	pass := true
	var skipped []string
	fmt.Fprintf(w, "%-45s %14s %14s %8s  %s\n", "benchmark", "baseline", "measured", "delta", "status")
	for _, path := range baselinePaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return false, err
		}
		var base baseline
		if err := json.Unmarshal(data, &base); err != nil {
			return false, fmt.Errorf("%s: %w", path, err)
		}
		for _, b := range base.Benchmarks {
			m, ok := lookup(got, b.Name)
			if !ok {
				skipped = append(skipped, b.Name)
				continue
			}
			delta := (m.nsPerOp - b.NsPerOp) / b.NsPerOp
			status := "ok"
			if delta > tol {
				// Sub-50ns baselines are harness-noise-dominated (a nil
				// branch, an atomic add): their time never gates, only
				// their allocs do.
				if b.NsPerOp < 50 {
					status = "ok (sub-noise)"
				} else {
					status, pass = "REGRESSED", false
				}
			} else if delta < -tol {
				status = "improved"
			}
			fmt.Fprintf(w, "%-45s %12.0fns %12.0fns %+7.1f%%  %s\n",
				b.Name, b.NsPerOp, m.nsPerOp, delta*100, status)
			if b.AllocsPerOp != nil && m.hasAllocs {
				ad := 0.0
				if *b.AllocsPerOp > 0 {
					ad = (m.allocsPerOp - *b.AllocsPerOp) / *b.AllocsPerOp
				} else if m.allocsPerOp > 0 {
					ad = 1 // zero-alloc baseline broken by any allocation
				}
				astatus := "ok"
				if ad > tol {
					astatus, pass = "REGRESSED", false
				}
				fmt.Fprintf(w, "%-45s %12.0f a %12.0f a %+7.1f%%  %s\n",
					"  allocs/op", *b.AllocsPerOp, m.allocsPerOp, ad*100, astatus)
			}
		}
	}
	for _, name := range skipped {
		fmt.Fprintf(w, "%-45s %14s %14s %8s  skipped (not run)\n", name, "-", "-", "-")
	}
	if !pass {
		fmt.Fprintf(w, "\nbenchdiff: regression beyond %.0f%% tolerance\n", tol*100)
	}
	return pass, nil
}
