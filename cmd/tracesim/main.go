// Command tracesim reproduces the paper's Figure 4: the five server
// workloads replayed against their disk arrays at the baseline spindle speed
// and three +5,000 RPM increments, reporting response-time CDFs over the
// paper's buckets and the mean response times.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		workload   = flag.String("workload", "", "run only this workload (default: all five)")
		requests   = flag.Int("requests", 300000, "requests per workload (0 = the paper's full counts)")
		save       = flag.String("save", "", "write the generated trace to this file instead of simulating")
		analyze    = flag.Bool("analyze", false, "print trace profiles (arm movement, seek distances) instead of simulating")
		config     = flag.String("config", "", "load workload definitions from this JSON file instead of the built-ins")
		dumpConfig = flag.String("dumpconfig", "", "write the built-in workload definitions to this JSON file and exit")
		failDisk   = flag.Int("faildisk", -1, "fail this member disk mid-run and report degraded-mode service (-1 = off)")
		failAt     = flag.Duration("failat", 5*time.Second, "when the injected member failure strikes")
		rebuildMB  = flag.Float64("rebuildmb", raid.DefaultRebuildMBPerSec, "rebuild rate onto the spare, MB/s")
		noSpare    = flag.Bool("nospare", false, "run the failure without a hot spare (no rebuild)")
		exact      = flag.Bool("exact", false, "collect whole traces for exact percentiles (O(trace) memory) instead of streaming")
		workers    = flag.Int("workers", 0, "RPM-sweep worker count (0 = all cores, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	var oc obs.CLI
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()
	oc.Enable()
	// An interrupted run still flushes -metrics-out/-trace-out before
	// exiting with the conventional 128+signal status.
	stopFlush := oc.FlushOnInterrupt()
	if oc.Registry != nil {
		parallel.SetMetrics(parallel.NewMetrics(oc.Registry))
	}
	if *dumpConfig != "" {
		if err := dumpBuiltins(*dumpConfig); err != nil {
			fmt.Fprintln(os.Stderr, "tracesim:", err)
			os.Exit(1)
		}
		return
	}
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
	fi := faultInjection{disk: *failDisk, at: *failAt, rebuildMB: *rebuildMB, spare: !*noSpare}
	err = run(*workload, *requests, *save, *analyze, *config, *exact, *workers, fi,
		core.Observe{Registry: oc.Registry, Tracer: oc.Tracer})
	stopFlush() // uninstall before the normal flush so the writers cannot race
	if err == nil {
		err = oc.Flush()
	}
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}

// faultInjection configures the -faildisk degraded-mode run.
type faultInjection struct {
	disk      int
	at        time.Duration
	rebuildMB float64
	spare     bool
}

// dumpBuiltins writes the five paper workloads as an editable JSON config.
func dumpBuiltins(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteConfig(f, trace.Workloads); err != nil {
		return err
	}
	fmt.Printf("wrote %d workload definitions to %s\n", len(trace.Workloads), path)
	return f.Close()
}

func run(name string, requests int, save string, analyze bool, config string, exact bool, workers int, fi faultInjection, ob core.Observe) error {
	workloads := trace.Workloads
	if config != "" {
		f, err := os.Open(config)
		if err != nil {
			return err
		}
		defer f.Close()
		workloads, err = trace.ReadConfig(f)
		if err != nil {
			return err
		}
	}
	if name != "" {
		found := false
		for _, w := range workloads {
			if w.Name == name {
				workloads = []trace.Params{w}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("workload %q not in the loaded set", name)
		}
	}
	for _, w := range workloads {
		if requests > 0 {
			w = w.WithRequests(requests)
		}
		if save != "" {
			return saveTrace(w, save)
		}
		if analyze {
			if err := analyzeTrace(w); err != nil {
				return err
			}
			continue
		}
		if fi.disk >= 0 {
			if err := runDegraded(w, fi); err != nil {
				return err
			}
			continue
		}
		// The streaming path replays each speed straight from the seeded
		// generator in O(1) memory (P² 95th percentile); -exact collects
		// the trace for exact order statistics. -metrics-out/-trace-out
		// ride the streaming path, where the per-step hooks are live.
		var res core.WorkloadResult
		var err error
		steps := core.Figure4Steps(w.BaselineRPM)
		if exact {
			res, err = core.RunFigure4Steps(w, steps, workers)
		} else {
			res, err = core.RunFigure4StepsStreamObs(w, steps, workers, ob)
		}
		if err != nil {
			return err
		}
		fmt.Print(core.FormatResult(res))
		imp := res.Improvements()
		fmt.Printf("  mean response improvement vs baseline: +%.1f%% +%.1f%% +%.1f%%\n\n",
			imp[0]*100, imp[1]*100, imp[2]*100)
	}
	return nil
}

// runDegraded replays the workload at its baseline speed with one member
// disk failed mid-run, servicing through the recovery engine: mirror reads
// fail over, RAID-5 reads reconstruct from the survivors, and (with a
// spare) the rebuild replays onto it while foreground service continues.
func runDegraded(w trace.Params, fi faultInjection) error {
	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		return err
	}
	if fi.disk >= len(vol.Disks()) {
		return fmt.Errorf("workload %s has %d disks, cannot fail disk %d",
			w.Name, len(vol.Disks()), fi.disk)
	}
	vol.Disks()[fi.disk].SetFaults(disksim.FailAfter{T: fi.at})
	src, err := w.Stream(vol.Capacity())
	if err != nil {
		return err
	}
	total := src.Remaining()
	var spares []*disksim.Disk
	if fi.spare {
		layout, err := w.MemberDiskLayout()
		if err != nil {
			return err
		}
		sp, err := disksim.New(disksim.Config{Layout: layout, RPM: w.BaselineRPM})
		if err != nil {
			return err
		}
		spares = append(spares, sp)
	}
	s, err := raid.NewRecoverySession(vol, raid.RecoveryConfig{
		Reliability:     reliability.Default(),
		RebuildMBPerSec: fi.rebuildMB,
	}, spares...)
	if err != nil {
		return err
	}
	// Stream the replay: the healthy/degraded split is accumulated per
	// completion, so nothing is retained.
	var healthy, degraded stats.Running
	err = s.RunStream(sim.NewEngine(), src,
		sim.SinkFunc[raid.Completion](func(c raid.Completion) {
			if c.Degraded {
				degraded.Add(c.Response())
			} else {
				healthy.Add(c.Response())
			}
		}))
	if err != nil {
		return err
	}
	rep := s.Report()

	fmt.Printf("%s (%v, %d disks): disk %d fails at %v\n",
		w.Name, vol.Level(), len(vol.Disks()), fi.disk, fi.at)
	fmt.Printf("  served %d/%d requests: %d degraded (mean %.2f ms) vs %d healthy (mean %.2f ms)\n",
		healthy.N()+degraded.N(), total, degraded.N(), degraded.Mean(),
		healthy.N(), healthy.Mean())
	if rep.LostRequests > 0 {
		fmt.Printf("  %d requests LOST (no redundancy on %v)\n", rep.LostRequests, vol.Level())
	}
	fmt.Printf("  %d on-the-fly reconstructions, %d redundancy-exposed writes\n",
		rep.Reconstructions, rep.ExposedWrites)
	if rep.RebuildWindow > 0 {
		fmt.Printf("  rebuild window %v at %.0f MB/s: double-failure risk %.2e, MTTDL %.0f h\n",
			rep.RebuildWindow.Round(time.Second), fi.rebuildMB, rep.RebuildRisk, rep.MTTDL.Hours())
	}
	for _, e := range rep.Events {
		fmt.Printf("  %12v  %v disk %d\n", e.Time.Round(time.Millisecond), e.Kind, e.Disk)
	}
	fmt.Println()
	return nil
}

// analyzeTrace prints the workload's section 5.1-style profile (the paper
// quotes Openmail at 86% arm movement, 1,952 mean seek cylinders).
func analyzeTrace(w trace.Params) error {
	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		return err
	}
	reqs, err := w.Generate(vol.Capacity())
	if err != nil {
		return err
	}
	prof, err := w.Analyze(reqs)
	if err != nil {
		return err
	}
	fmt.Printf("%-17s %8d reqs  %5.1f%% reads  mean %5.1f sectors  %6.0f req/s\n",
		w.Name, prof.Requests, prof.ReadFraction*100, prof.MeanSectors, prof.Rate)
	fmt.Printf("%-17s %8d disk I/Os: %4.1f%% move the arm, mean seek %.0f cylinders\n\n",
		"", prof.DiskRequests, prof.ArmMoveFraction*100, prof.MeanSeekCylinders)
	return nil
}

func saveTrace(w trace.Params, path string) error {
	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		return err
	}
	reqs, err := w.Generate(vol.Capacity())
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, reqs); err != nil {
		return err
	}
	fmt.Printf("wrote %d requests of %s to %s\n", len(reqs), w.Name, path)
	return f.Close()
}
