// Command tracesim reproduces the paper's Figure 4: the five server
// workloads replayed against their disk arrays at the baseline spindle speed
// and three +5,000 RPM increments, reporting response-time CDFs over the
// paper's buckets and the mean response times.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	var (
		workload   = flag.String("workload", "", "run only this workload (default: all five)")
		requests   = flag.Int("requests", 300000, "requests per workload (0 = the paper's full counts)")
		save       = flag.String("save", "", "write the generated trace to this file instead of simulating")
		analyze    = flag.Bool("analyze", false, "print trace profiles (arm movement, seek distances) instead of simulating")
		config     = flag.String("config", "", "load workload definitions from this JSON file instead of the built-ins")
		dumpConfig = flag.String("dumpconfig", "", "write the built-in workload definitions to this JSON file and exit")
	)
	flag.Parse()
	if *dumpConfig != "" {
		if err := dumpBuiltins(*dumpConfig); err != nil {
			fmt.Fprintln(os.Stderr, "tracesim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*workload, *requests, *save, *analyze, *config); err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}

// dumpBuiltins writes the five paper workloads as an editable JSON config.
func dumpBuiltins(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteConfig(f, trace.Workloads); err != nil {
		return err
	}
	fmt.Printf("wrote %d workload definitions to %s\n", len(trace.Workloads), path)
	return f.Close()
}

func run(name string, requests int, save string, analyze bool, config string) error {
	workloads := trace.Workloads
	if config != "" {
		f, err := os.Open(config)
		if err != nil {
			return err
		}
		defer f.Close()
		workloads, err = trace.ReadConfig(f)
		if err != nil {
			return err
		}
	}
	if name != "" {
		found := false
		for _, w := range workloads {
			if w.Name == name {
				workloads = []trace.Params{w}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("workload %q not in the loaded set", name)
		}
	}
	for _, w := range workloads {
		if requests > 0 {
			w = w.WithRequests(requests)
		}
		if save != "" {
			return saveTrace(w, save)
		}
		if analyze {
			if err := analyzeTrace(w); err != nil {
				return err
			}
			continue
		}
		res, err := core.RunFigure4(w)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatResult(res))
		imp := res.Improvements()
		fmt.Printf("  mean response improvement vs baseline: +%.1f%% +%.1f%% +%.1f%%\n\n",
			imp[0]*100, imp[1]*100, imp[2]*100)
	}
	return nil
}

// analyzeTrace prints the workload's section 5.1-style profile (the paper
// quotes Openmail at 86% arm movement, 1,952 mean seek cylinders).
func analyzeTrace(w trace.Params) error {
	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		return err
	}
	reqs, err := w.Generate(vol.Capacity())
	if err != nil {
		return err
	}
	prof, err := w.Analyze(reqs)
	if err != nil {
		return err
	}
	fmt.Printf("%-17s %8d reqs  %5.1f%% reads  mean %5.1f sectors  %6.0f req/s\n",
		w.Name, prof.Requests, prof.ReadFraction*100, prof.MeanSectors, prof.Rate)
	fmt.Printf("%-17s %8d disk I/Os: %4.1f%% move the arm, mean seek %.0f cylinders\n\n",
		"", prof.DiskRequests, prof.ArmMoveFraction*100, prof.MeanSeekCylinders)
	return nil
}

func saveTrace(w trace.Params, path string) error {
	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		return err
	}
	reqs, err := w.Generate(vol.Capacity())
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, reqs); err != nil {
		return err
	}
	fmt.Printf("wrote %d requests of %s to %s\n", len(reqs), w.Name, path)
	return f.Close()
}
