// Command simd serves the simulator as a long-running service: roadmap
// sweeps, Figure-4 trace replays, DTM policy runs, RAID recovery
// scenarios and fleet-scale datacenter simulations submitted as HTTP/JSON
// jobs, executed on a bounded worker pool and streamed back as NDJSON. SIGINT/SIGTERM drain gracefully: no new
// jobs, in-flight work gets -drain-timeout to finish, metrics flush, exit 0.
//
// With -journal DIR the daemon is crash-safe: every admission, progress
// checkpoint and completion is fsync-journaled, and startup replays the log
// — completed jobs serve their buffered results, interrupted ones resume
// from their last checkpoint and produce byte-identical output.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/server"
	"repro/internal/surrogate"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts against :0)")
		workers      = flag.Int("workers", 2, "concurrent jobs")
		queueDepth   = flag.Int("queue", 16, "queued jobs admitted before 429")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "per-job deadline ceiling")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM")
		maxRequests  = flag.Int("max-requests", 200000, "per-job trace-length cap")
		maxFleet     = flag.Int("max-fleet-drives", 1000000, "fleet-job total drive cap")
		maxSyncFleet = flag.Int("max-sync-fleet-drives", 20000, "largest fleet job accepted without ?async=1")
		metricsOut   = flag.String("metrics-out", "", "write a final metrics snapshot here on shutdown")
		pprofAddr    = flag.String("pprof", "", "expose net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")

		journalDir  = flag.String("journal", "", "journal directory for crash-safe jobs (empty = in-memory only)")
		ckptEvery   = flag.Int("checkpoint-every", 2000, "completions between journal checkpoints in long runs")
		compactEach = flag.Duration("compact-every", time.Minute, "journal compaction period")

		surrogatePath = flag.String("surrogate-model", "", "preload a trained surrogate artifact (from surrogen train) to serve queries from boot")
	)
	flag.Parse()

	var model *surrogate.Model
	if *surrogatePath != "" {
		blob, err := os.ReadFile(*surrogatePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simd:", err)
			os.Exit(1)
		}
		m, err := surrogate.Decode(blob)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simd: surrogate model %s: %v\n", *surrogatePath, err)
			os.Exit(1)
		}
		model = m
	}

	cfg := server.Config{
		Addr:               *addr,
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		JobTimeout:         *jobTimeout,
		DrainTimeout:       *drainTimeout,
		MaxRequests:        *maxRequests,
		MaxFleetDrives:     *maxFleet,
		MaxSyncFleetDrives: *maxSyncFleet,
		JournalDir:         *journalDir,
		CheckpointEvery:    *ckptEvery,
		CompactEvery:       *compactEach,
		SurrogateModel:     model,
	}
	if err := run(cfg, *addrFile, *drainTimeout, *metricsOut, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

// startPprof serves net/http/pprof on its own listener, separate from the
// job API so profile scrapes are never subject to the daemon's admission
// control (and the profiling surface is never exposed on the service
// address). Returns a shutdown func.
func startPprof(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // closed via the returned shutdown func
	fmt.Printf("simd: pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { srv.Close() }, nil
}

func run(cfg server.Config, addrFile string, drainTimeout time.Duration, metricsOut, pprofAddr string) error {
	reg := obs.NewRegistry()
	parallel.SetMetrics(parallel.NewMetrics(reg))
	defer parallel.SetMetrics(nil)
	cfg.Registry = reg

	if pprofAddr != "" {
		stopPprof, err := startPprof(pprofAddr)
		if err != nil {
			return err
		}
		defer stopPprof()
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("simd: listening on http://%s\n", srv.Addr())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately instead of re-draining
	fmt.Println("simd: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if metricsOut != "" {
		if err := obs.WriteSnapshotFile(metricsOut, reg, true); err != nil {
			return err
		}
	}
	fmt.Println("simd: drained, bye")
	return nil
}
