// Command dtm runs the paper's Dynamic Thermal Management experiments:
// the thermal-slack analysis (Figure 5), the throttling-ratio sweeps
// (Figure 7), and the closed-loop policy controllers the paper sketches as
// future work.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	var (
		slack     = flag.Bool("slack", true, "print the Figure 5 thermal-slack analysis")
		throttle  = flag.Bool("throttle", true, "print the Figure 7 throttling sweeps")
		policy    = flag.Bool("policy", false, "run the closed-loop DTM policy comparison")
		emergency = flag.Bool("emergency", false, "run the thermal-emergency escalation ladder demo")
		faults    = flag.Bool("faults", false, "inject thermal off-track faults during the emergency run")
		faultseed = flag.Int64("faultseed", 1, "seed for the fault injector (runs are reproducible per seed)")
		failscale = flag.Float64("failscale", 1, "time acceleration for the disk-failure hazard (1 = physical rate)")
		requests  = flag.Int("requests", 30000, "requests for the policy and emergency runs")
	)
	var oc obs.CLI
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()
	oc.Enable()
	// An interrupted run still flushes -metrics-out/-trace-out before
	// exiting with the conventional 128+signal status.
	stopFlush := oc.FlushOnInterrupt()
	err := run(*slack, *throttle, *policy, *emergency, *faults, *faultseed, *failscale, *requests, &oc)
	stopFlush() // uninstall before the normal flush so the writers cannot race
	if err == nil {
		err = oc.Flush()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtm:", err)
		os.Exit(1)
	}
}

func run(slack, throttle, policy, emergency, faults bool, faultseed int64, failscale float64, requests int, oc *obs.CLI) error {
	if slack {
		if err := runSlack(); err != nil {
			return err
		}
	}
	if throttle {
		if err := runThrottle(); err != nil {
			return err
		}
	}
	if policy {
		if err := runPolicy(requests, oc); err != nil {
			return err
		}
	}
	if emergency {
		if err := runEmergency(requests, faults, faultseed, failscale, oc); err != nil {
			return err
		}
	}
	return nil
}

// engine returns a fresh event engine with the -trace-out tracer attached
// (nil tracer = the free path). The policy runs are sequential, so sharing
// one tracer across engines still records spans in a deterministic order.
func engine(oc *obs.CLI) *sim.Engine {
	e := sim.NewEngine()
	e.SetTracer(oc.Tracer)
	return e
}

func runSlack() error {
	pts, err := dtm.Slack(nil, 1, thermal.DefaultAmbient)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5(a): envelope-design vs VCM-off maximum RPM (1 platter)")
	for _, p := range pts {
		fmt.Printf("  %v: %7.0f RPM (VCM on) -> %7.0f RPM (VCM off): slack %6.0f RPM (VCM %.3f W)\n",
			p.Size, float64(p.EnvelopeRPM), float64(p.VCMOffRPM),
			float64(p.SlackRPM()), float64(p.VCMPower))
	}

	fmt.Println("\nFigure 5(b): revised IDR roadmap when the slack is exploited (2.6\")")
	on, err := scaling.Roadmap(scaling.Config{PlatterSizes: []units.Inches{2.6}})
	if err != nil {
		return err
	}
	off, err := scaling.Roadmap(scaling.Config{PlatterSizes: []units.Inches{2.6}, VCMOff: true})
	if err != nil {
		return err
	}
	onIdx, offIdx := scaling.ByYearSize(on), scaling.ByYearSize(off)
	fmt.Printf("%4s %10s %14s %14s\n", "Year", "target", "envelope IDR", "VCM-off IDR")
	for y := 2002; y <= 2012; y++ {
		fmt.Printf("%4d %10.1f %14.1f %14.1f\n",
			y, float64(scaling.TargetIDR(y)),
			float64(onIdx[y][2.6].MaxIDR), float64(offIdx[y][2.6].MaxIDR))
	}
	fmt.Println()
	return nil
}

func runThrottle() error {
	cases := []struct {
		name string
		e    dtm.ThrottleExperiment
	}{
		{"Figure 7(a): VCM-only throttling, 2.6\" at 24,534 RPM", dtm.Figure7a()},
		{"Figure 7(b): VCM+RPM throttling, 37,001 -> 22,001 RPM", dtm.Figure7b()},
	}
	for _, c := range cases {
		fmt.Println(c.name)
		sweep, err := c.e.Sweep(dtm.DefaultTCools())
		if err != nil {
			return err
		}
		fmt.Printf("  %8s %10s %8s\n", "t_cool", "t_heat", "ratio")
		for _, p := range sweep {
			fmt.Printf("  %8v %10v %8.3f\n", p.TCool, p.THeat.Round(10*time.Millisecond), p.Ratio)
		}
		fmt.Println()
	}
	return nil
}

func runPolicy(requests int, oc *obs.CLI) error {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		return err
	}
	th, err := thermal.New(geom)
	if err != nil {
		return err
	}
	// Each controller streams the same seeded workload from a fresh source:
	// nothing is materialized, and the 95th percentiles are P² estimates.
	src := func() sim.Source[disksim.Request] {
		return policySource(layout.TotalSectors(), requests, 120)
	}

	fmt.Printf("Closed-loop DTM policy comparison (2005 drive, %d random requests at 120/s)\n", requests)

	// Envelope design: 15,020 RPM, no DTM needed.
	slow, err := disksim.New(disksim.Config{Layout: layout, RPM: 15020})
	if err != nil {
		return err
	}
	slow.SetInstruments(disksim.NewInstruments(oc.Registry, len(layout.Zones), "policy", "envelope"))
	var envMean stats.Running
	err = slow.RunStream(engine(oc), src(),
		sim.SinkFunc[disksim.Completion](func(c disksim.Completion) { envMean.Add(c.Response()) }))
	if err != nil {
		return err
	}
	fmt.Printf("  envelope design @15,020 RPM: mean %.2f ms\n", envMean.Mean())

	// Average-case design at the 2005 target speed with watermark throttling.
	fast, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		return err
	}
	fast.SetInstruments(disksim.NewInstruments(oc.Registry, len(layout.Zones), "policy", "watermark"))
	ctl := dtm.Controller{Disk: fast, Thermal: th, Mode: dtm.VCMOnly,
		Ins: dtm.NewInstruments(oc.Registry, "watermark")}
	res, err := ctl.RunStream(engine(oc), src(), sim.Discard[disksim.Completion]())
	if err != nil {
		return err
	}
	th.ExportCache(oc.Registry, "policy", "watermark")
	fmt.Printf("  average-case @24,534 RPM + throttling: mean %.2f ms, max air %.2f C, "+
		"%d throttle events (%.1fs paused)\n",
		res.MeanResponseMillis, float64(res.MaxAirTemp),
		res.ThrottleEvents, res.ThrottledTime.Seconds())

	// Two-speed slack ramping from the envelope-design base.
	base, err := disksim.New(disksim.Config{Layout: layout, RPM: 15020})
	if err != nil {
		return err
	}
	th2, err := thermal.New(geom)
	if err != nil {
		return err
	}
	base.SetInstruments(disksim.NewInstruments(oc.Registry, len(layout.Zones), "policy", "slack-ramp"))
	ramp := dtm.SlackRamp{Disk: base, Thermal: th2, BoostRPM: 24534,
		Ins: dtm.NewInstruments(oc.Registry, "slack-ramp")}
	rres, err := ramp.RunStream(engine(oc), src(), sim.Discard[disksim.Completion]())
	if err != nil {
		return err
	}
	th2.ExportCache(oc.Registry, "policy", "slack-ramp")
	fmt.Printf("  two-speed slack ramp 15,020<->24,534: mean %.2f ms, max air %.2f C, "+
		"%d transitions (%.1fs boosted)\n",
		rres.MeanResponseMillis, float64(rres.MaxAirTemp),
		rres.Transitions, rres.BoostedTime.Seconds())

	// DRPM-style multi-level control.
	multi, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		return err
	}
	th3, err := thermal.New(geom)
	if err != nil {
		return err
	}
	multi.SetInstruments(disksim.NewInstruments(oc.Registry, len(layout.Zones), "policy", "drpm"))
	drpm := dtm.DRPM{
		Disk:    multi,
		Thermal: th3,
		Levels:  []units.RPM{15020, 18000, 21000, 24534},
		Ins:     dtm.NewInstruments(oc.Registry, "drpm"),
	}
	dres, err := drpm.RunStream(engine(oc), src(), sim.Discard[disksim.Completion]())
	if err != nil {
		return err
	}
	th3.ExportCache(oc.Registry, "policy", "drpm")
	fmt.Printf("  DRPM 4 levels 15,020..24,534: mean %.2f ms, max air %.2f C, %d transitions\n",
		dres.MeanResponseMillis, float64(dres.MaxAirTemp), dres.Transitions)

	// Mirrored pair with thermally-steered reads (section 5.4).
	var mdisks [2]*disksim.Disk
	var mtherm [2]*thermal.Model
	for i := range mdisks {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
		if err != nil {
			return err
		}
		th, err := thermal.New(geom)
		if err != nil {
			return err
		}
		mdisks[i], mtherm[i] = d, th
	}
	// The mirror policy steers between members and keeps its batch API; it
	// is the one consumer here that still collects the workload.
	mirror := dtm.MirrorPolicy{Disks: mdisks, Thermal: mtherm}
	mres, err := mirror.Run(sim.Collect(src()))
	if err != nil {
		return err
	}
	fmt.Printf("  RAID-1 steered pair @24,534: mean %.2f ms, max member air %.2f C, %d role switches\n",
		mres.MeanResponseMillis, float64(mres.MaxAirTemp), mres.Switches)
	return nil
}

// runEmergency demonstrates the three-stage thermal-emergency ladder: the
// 2005 average-case drive warm-started at its past-envelope worst case, with
// (optionally) the thermal fault injector wired to the same transient so
// off-track retries, sector remaps, and the failure hazard all track the
// temperature the ladder is regulating.
func runEmergency(requests int, faults bool, seed int64, failscale float64, oc *obs.CLI) error {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		return err
	}
	disk, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		return err
	}
	th, err := thermal.New(geom)
	if err != nil {
		return err
	}
	hot := th.SteadyState(thermal.WorstCase(24534))
	disk.SetInstruments(disksim.NewInstruments(oc.Registry, len(layout.Zones), "policy", "escalation"))
	esc := dtm.Escalation{
		Disk:    disk,
		Thermal: th,
		Levels:  []units.RPM{24534, 21000, 18000, 15020},
		Initial: &hot,
		Ins:     dtm.NewInstruments(oc.Registry, "escalation"),
	}
	if faults {
		inj := dtm.NewThermalFaults(dtm.OffTrackModel{}, reliability.Default(), nil, seed)
		inj.TimeAcceleration = failscale
		esc.Faults = inj
	}
	var served int
	res, err := esc.RunStream(engine(oc), policySource(layout.TotalSectors(), requests, 120),
		sim.SinkFunc[disksim.Completion](func(disksim.Completion) { served++ }))
	if err != nil {
		return err
	}
	th.ExportCache(oc.Registry, "policy", "escalation")
	fmt.Printf("Thermal-emergency escalation ladder (2005 drive @24,534 RPM, hot start, %d requests)\n", requests)
	fmt.Printf("  served %d/%d: mean %.2f ms, p95 %.2f ms, max air %.2f C\n",
		served, requests,
		res.MeanResponseMillis, res.P95ResponseMillis, float64(res.MaxAirTemp))
	fmt.Printf("  stage engagements: %d RPM step-downs, %d throttles (%.1fs), %d offlines (%.1fs)\n",
		res.StepDowns, res.Throttles, res.ThrottledTime.Seconds(),
		res.Offlines, res.OfflineTime.Seconds())
	if faults {
		fmt.Printf("  injected faults (seed %d, %gx hazard): %d off-track retries, %d sector remaps\n",
			seed, failscale, res.Retries, res.Remaps)
		if res.DiskFailed {
			fmt.Printf("  disk FAILED at %v\n", res.FailedAt)
		}
	}
	fmt.Println()
	return nil
}

// policySource is the seeded synthetic policy workload (seed 11, the
// historic comparison seed), shared with the serving layer via
// dtm.SyntheticSource.
func policySource(total int64, n int, rate float64) sim.Source[disksim.Request] {
	return dtm.SyntheticSource(total, n, rate, 11)
}
