// Command surrogen trains, inspects and queries surrogate models — the
// interpolating fast path for roadmap queries.
//
//	surrogen train -out model.surm [-years ...] [-rpms ...] [-max-cv 0.05]
//	surrogen inspect model.surm
//	surrogen query -model model.surm -year 2006 -rpm 15000 -workload TPC-C
//	surrogen query -model model.surm -batch < queries.ndjson
//
// train writes the versioned artifact to -out and streams the
// cross-validation report as NDJSON on stdout (one "fold" line per fold,
// one closing "summary" line with the artifact checksum). The artifact
// and the report are byte-identical at every -workers value, so CI can
// pin both as goldens. With -max-cv the command exits non-zero when the
// cross-validated max relative error exceeds the bound — the training
// quality gate.
//
// query answers from the model's interpolation hull; out-of-hull queries
// fail unless -exact-fallback routes them through the exact engine
// (answers then carry "source":"exact").
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/geometry"
	"repro/internal/surrogate"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "surrogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: surrogen <train|inspect|query> [flags]")
	}
	switch args[0] {
	case "train":
		return runTrain(args[1:], stdout)
	case "inspect":
		return runInspect(args[1:], stdout)
	case "query":
		return runQuery(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown mode %q (want train, inspect or query)", args[0])
	}
}

// foldLine and trainSummary mirror the simd surrogate-train job stream, so
// goldens pinned from one pin both.
type foldLine struct {
	Kind string `json:"kind"`
	surrogate.FoldReport
}

type trainSummary struct {
	Kind          string                   `json:"kind"`
	Cells         int                      `json:"cells"`
	ArtifactBytes int                      `json:"artifact_bytes"`
	Checksum      string                   `json:"checksum"`
	MaxRelErr     float64                  `json:"max_rel_err"`
	Channels      []surrogate.ChannelError `json:"channels"`
}

func runTrain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "artifact output path (required)")
		years     = fs.String("years", "", "comma-separated roadmap years (default 2002..2012)")
		rpms      = fs.String("rpms", "", "comma-separated RPM nodes (default 7200,10000,12000,15000,18000,21000)")
		platters  = fs.String("platters", "1", "comma-separated platter counts")
		ffs       = fs.String("form-factors", geometry.FormFactor35.String(), "comma-separated form factors")
		workloads = fs.String("workloads", "", "comma-separated workload names (default all)")
		requests  = fs.Int("requests", 0, "requests per latency replay (0 = 2000)")
		refine    = fs.Bool("refine", false, "quadratic refinement along the RPM axis")
		folds     = fs.Int("folds", 0, "cross-validation folds (0 = 5)")
		probes    = fs.Int("probes", 0, "held-out probes per fold (0 = 8)")
		seed      = fs.Int64("seed", 0, "cross-validation probe seed (0 = 1)")
		workers   = fs.Int("workers", 0, "sampling fan-out (0 = all cores)")
		maxCV     = fs.Float64("max-cv", 0, "fail when CV max relative error exceeds this bound (0 = no gate)")
		verbose   = fs.Bool("v", false, "stream each sampled cell to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return errors.New("train: -out is required")
	}

	cfg := surrogate.TrainConfig{
		Requests: *requests,
		Refine:   *refine,
		Folds:    *folds,
		Probes:   *probes,
		Seed:     *seed,
		Workers:  *workers,
	}
	var err error
	if cfg.Years, err = parseInts(*years, defaultYears()); err != nil {
		return fmt.Errorf("train: -years: %w", err)
	}
	if cfg.RPMs, err = parseFloats(*rpms, []float64{7200, 10000, 12000, 15000, 18000, 21000}); err != nil {
		return fmt.Errorf("train: -rpms: %w", err)
	}
	if cfg.Hardware, err = parseHardware(*platters, *ffs); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	cfg.Workloads = splitList(*workloads)
	if len(cfg.Workloads) == 0 {
		for _, w := range trace.Workloads {
			cfg.Workloads = append(cfg.Workloads, w.Name)
		}
	}

	progress := func(surrogate.Cell) error { return nil }
	if *verbose {
		enc := json.NewEncoder(os.Stderr)
		progress = func(c surrogate.Cell) error { return enc.Encode(c) }
	}
	m, err := surrogate.Train(context.Background(), cfg, progress)
	if err != nil {
		return err
	}
	blob, err := surrogate.Encode(m)
	if err != nil {
		return err
	}
	sum, err := surrogate.Sum(blob)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}

	enc := json.NewEncoder(stdout)
	for _, f := range m.CV.Folds {
		if err := enc.Encode(foldLine{Kind: "fold", FoldReport: f}); err != nil {
			return err
		}
	}
	if err := enc.Encode(trainSummary{
		Kind:          "summary",
		Cells:         m.Cells(),
		ArtifactBytes: len(blob),
		Checksum:      sum,
		MaxRelErr:     m.CV.MaxRel(),
		Channels:      m.CV.Overall,
	}); err != nil {
		return err
	}
	if *maxCV > 0 && m.CV.MaxRel() > *maxCV {
		return fmt.Errorf("train: CV max relative error %.4f exceeds -max-cv %.4f", m.CV.MaxRel(), *maxCV)
	}
	return nil
}

func runInspect(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("inspect: want exactly one artifact path")
	}
	m, blob, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	sum, err := surrogate.Sum(blob)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "artifact:  %d bytes, version %d, checksum %s\n", len(blob), surrogate.Version, sum)
	fmt.Fprintf(stdout, "grid:      %d cells — years %d..%d (%d), RPM %.0f..%.0f (%d), %d hardware, %d workloads\n",
		m.Cells(), m.Years[0], m.Years[len(m.Years)-1], len(m.Years),
		m.RPMs[0], m.RPMs[len(m.RPMs)-1], len(m.RPMs), len(m.Hardware), len(m.Workloads))
	fmt.Fprintf(stdout, "sampling:  %d requests/replay, %d zones, refine=%v\n", m.Requests, m.Zones, m.Refine)
	fmt.Fprintf(stdout, "cv:        seed %d, %d folds, %d probes\n", m.CV.Seed, len(m.CV.Folds), m.CV.Probes)
	fmt.Fprintf(stdout, "%-10s %12s %12s\n", "channel", "max rel err", "mean rel err")
	for _, c := range m.CV.Overall {
		fmt.Fprintf(stdout, "%-10s %12.5f %12.5f\n", c.Channel, c.MaxRel, c.MeanRel)
	}
	return nil
}

// answerLine matches the simd surrogate-query job's answer lines.
type answerLine struct {
	Kind  string `json:"kind"`
	Index int    `json:"index"`
	surrogate.Query
	surrogate.Answer
	Source string `json:"source"`
}

func runQuery(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "", "trained artifact path (required)")
		batch     = fs.Bool("batch", false, "read NDJSON queries from stdin")
		fallback  = fs.Bool("exact-fallback", false, "answer out-of-hull queries with the exact engine")
		year      = fs.Int("year", 2006, "roadmap year")
		rpm       = fs.Float64("rpm", 15000, "spindle speed")
		plat      = fs.Int("platters", 1, "platter count")
		ff        = fs.String("form-factor", geometry.FormFactor35.String(), "form factor")
		workload  = fs.String("workload", "TPC-C", "workload name")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return errors.New("query: -model is required")
	}
	m, _, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	var exact *surrogate.Exact
	if *fallback {
		if exact, err = surrogate.NewExact(m.ExactConfig()); err != nil {
			return err
		}
	}

	queries := []surrogate.Query{{Year: *year, RPM: *rpm, Platters: *plat, FormFactor: *ff, Workload: *workload}}
	if *batch {
		queries = queries[:0]
		sc := bufio.NewScanner(stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if len(strings.TrimSpace(sc.Text())) == 0 {
				continue
			}
			var q surrogate.Query
			if err := json.Unmarshal(sc.Bytes(), &q); err != nil {
				return fmt.Errorf("query %d: %w", len(queries), err)
			}
			queries = append(queries, q)
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(stdout)
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		ans, err := m.Eval(q)
		source := "surrogate"
		if errors.Is(err, surrogate.ErrOutOfHull) && exact != nil {
			ans, err = exact.Solve(q)
			source = "exact"
		}
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		if err := enc.Encode(answerLine{Kind: "answer", Index: i, Query: q, Answer: ans, Source: source}); err != nil {
			return err
		}
	}
	return nil
}

func loadModel(path string) (*surrogate.Model, []byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	m, err := surrogate.Decode(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, blob, nil
}

func defaultYears() []int {
	ys := make([]int, 0, 11)
	for y := 2002; y <= 2012; y++ {
		ys = append(ys, y)
	}
	return ys
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string, def []int) ([]int, error) {
	parts := splitList(s)
	if len(parts) == 0 {
		return def, nil
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func parseFloats(s string, def []float64) ([]float64, error) {
	parts := splitList(s)
	if len(parts) == 0 {
		return def, nil
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// parseHardware crosses the platter counts with the form factors.
func parseHardware(platters, ffs string) ([]surrogate.Hardware, error) {
	ps, err := parseInts(platters, nil)
	if err != nil {
		return nil, fmt.Errorf("-platters: %w", err)
	}
	fs := splitList(ffs)
	if len(ps) == 0 || len(fs) == 0 {
		return nil, errors.New("-platters and -form-factors must be non-empty")
	}
	var hw []surrogate.Hardware
	for _, f := range fs {
		if _, err := surrogate.ParseFormFactor(f); err != nil {
			return nil, err
		}
		for _, p := range ps {
			hw = append(hw, surrogate.Hardware{Platters: p, FormFactor: f})
		}
	}
	return hw, nil
}
