package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func trainArgs(out string, workers string) []string {
	return []string{
		"train", "-out", out, "-workers", workers,
		"-years", "2002,2006", "-rpms", "10000,15000,20000",
		"-workloads", "TPC-C", "-requests", "200", "-folds", "2", "-probes", "2",
	}
}

// TestTrainWorkerInvariance: the artifact on disk and the CV report on
// stdout are byte-identical at any -workers value.
func TestTrainWorkerInvariance(t *testing.T) {
	dir := t.TempDir()
	p1, p8 := filepath.Join(dir, "w1.surm"), filepath.Join(dir, "w8.surm")

	var out1, out8 bytes.Buffer
	if err := run(trainArgs(p1, "1"), strings.NewReader(""), &out1); err != nil {
		t.Fatalf("train -workers 1: %v", err)
	}
	if err := run(trainArgs(p8, "8"), strings.NewReader(""), &out8); err != nil {
		t.Fatalf("train -workers 8: %v", err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := os.ReadFile(p8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Error("artifacts differ across worker counts")
	}
	if !bytes.Equal(out1.Bytes(), out8.Bytes()) {
		t.Errorf("CV reports differ across worker counts:\n%s\nvs\n%s", out1.String(), out8.String())
	}
}

// TestTrainMaxCVGate: an unreachable bound fails the command after the
// report is written — the CI quality gate.
func TestTrainMaxCVGate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.surm")
	var buf bytes.Buffer
	args := append(trainArgs(out, "4"), "-max-cv", "1e-9")
	err := run(args, strings.NewReader(""), &buf)
	if err == nil || !strings.Contains(err.Error(), "exceeds -max-cv") {
		t.Fatalf("err = %v, want max-cv gate failure", err)
	}
	if !strings.Contains(buf.String(), `"kind":"summary"`) {
		t.Error("gate failure should still print the report")
	}
	if _, statErr := os.Stat(out); statErr != nil {
		t.Error("gate failure should still write the artifact")
	}
}

// TestQueryBatchAndFallback: batch NDJSON in, answer lines out; the
// out-of-hull query needs -exact-fallback.
func TestQueryBatchAndFallback(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.surm")
	var buf bytes.Buffer
	if err := run(trainArgs(out, "4"), strings.NewReader(""), &buf); err != nil {
		t.Fatal(err)
	}

	queries := `{"year":2004,"rpm":12000,"platters":1,"form_factor":"3.5-inch","workload":"TPC-C"}
{"year":2030,"rpm":12000,"platters":1,"form_factor":"3.5-inch","workload":"TPC-C"}
`
	var ans bytes.Buffer
	err := run([]string{"query", "-model", out, "-batch"}, strings.NewReader(queries), &ans)
	if err == nil {
		t.Fatal("out-of-hull batch without -exact-fallback should fail")
	}

	ans.Reset()
	if err := run([]string{"query", "-model", out, "-batch", "-exact-fallback"},
		strings.NewReader(queries), &ans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(ans.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d answer lines, want 2:\n%s", len(lines), ans.String())
	}
	if !strings.Contains(lines[0], `"source":"surrogate"`) {
		t.Errorf("in-hull answer not from the surrogate: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"source":"exact"`) {
		t.Errorf("out-of-hull answer not from the exact engine: %s", lines[1])
	}
}

// TestBadInvocations pins argument validation.
func TestBadInvocations(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},
		{"predict"},
		{"train"},
		{"train", "-out", "/tmp/x.surm", "-years", "junk"},
		{"train", "-out", "/tmp/x.surm", "-form-factors", "9-inch"},
		{"inspect"},
		{"inspect", "/nonexistent.surm"},
		{"query"},
	} {
		if err := run(args, strings.NewReader(""), &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
