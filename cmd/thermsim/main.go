// Command thermsim runs the drive thermal model: the Figure 1 transient
// (Cheetah 15K.3 warming from ambient to the 45.22 C envelope) by default,
// or a steady-state / max-RPM query for any geometry.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/geometry"
	"repro/internal/plot"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	var (
		platter  = flag.Float64("platter", 2.6, "platter diameter in inches")
		platters = flag.Int("platters", 1, "number of platters")
		rpm      = flag.Float64("rpm", 15000, "spindle speed")
		duty     = flag.Float64("duty", 1, "VCM duty cycle (1 = always seeking)")
		ambient  = flag.Float64("ambient", float64(thermal.DefaultAmbient), "external air temperature, C")
		ff25     = flag.Bool("ff25", false, "use the 2.5-inch enclosure")
		minutes  = flag.Int("minutes", 150, "transient duration to simulate")
		steady   = flag.Bool("steady", false, "print only the steady state and max envelope RPM")
	)
	flag.Parse()

	ff := geometry.FormFactor35
	if *ff25 {
		ff = geometry.FormFactor25
	}
	geom := geometry.Drive{
		PlatterDiameter: units.Inches(*platter),
		Platters:        *platters,
		FormFactor:      ff,
	}
	m, err := thermal.New(geom)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
	load := thermal.Load{RPM: units.RPM(*rpm), VCMDuty: *duty, Ambient: units.Celsius(*ambient)}

	ss := m.SteadyState(load)
	fmt.Printf("drive: %v platter x%d in %v enclosure at %v (VCM duty %.2f, ambient %.1f C)\n",
		geom.PlatterDiameter, geom.Platters, geom.FormFactor, load.RPM, load.VCMDuty, *ambient)
	fmt.Printf("windage %v, VCM %v, bearing %v\n",
		thermal.ViscousDissipation(load.RPM, geom.PlatterDiameter, geom.Platters),
		thermal.VCMPower(geom.PlatterDiameter),
		thermal.BearingLoss(load.RPM, geom.PlatterDiameter))
	fmt.Printf("steady state: %s\n", ss)
	fmt.Printf("max RPM within envelope (%v): %v (VCM on), %v (VCM off)\n",
		thermal.Envelope,
		m.MaxRPM(thermal.Envelope, 1, load.Ambient),
		m.MaxRPM(thermal.Envelope, 0, load.Ambient))
	if *steady {
		return
	}

	fmt.Println("\nFigure 1 transient from a uniform ambient soak:")
	tr := m.NewTransient(thermal.Uniform(load.Ambient))
	fmt.Printf("%8s %10s %10s %10s %10s\n", "minute", "air", "spindle", "base", "actuator")
	minutes2 := make([]float64, 0, *minutes+1)
	air := make([]float64, 0, *minutes+1)
	for minute := 0; minute <= *minutes; minute++ {
		if minute > 0 {
			tr.Advance(load, time.Minute)
		}
		s := tr.State()
		minutes2 = append(minutes2, float64(minute))
		air = append(air, float64(s.Air))
		if minute <= 10 || minute%5 == 0 {
			fmt.Printf("%8d %10.2f %10.2f %10.2f %10.2f\n",
				minute, float64(s.Air), float64(s.Spindle), float64(s.Base), float64(s.Actuator))
		}
	}

	var c plot.Chart
	c.Title = "Figure 1: internal air temperature over time"
	c.XLabel = "minutes"
	c.YLabel = "C"
	c.Height = 14
	if err := c.Add(plot.Series{Name: "T_air", X: minutes2, Y: air}); err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
	out, err := c.Render()
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println(out)
}
