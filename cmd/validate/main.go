// Command validate reproduces the paper's model-validation tables: Table 1
// (thirteen real SCSI drives: model capacity and IDR against datasheets) and
// Table 2 (rated maximum operating temperatures supporting the constant
// thermal envelope). It is a gate, not just a printer: every Table 1 row is
// compared against the paper's own model predictions, a per-field diff is
// printed for anything outside tolerance, and the command exits non-zero —
// so a physics regression cannot scroll by as a plausible-looking table.
package main

import (
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/drive"
	"repro/internal/thermal"
)

// Comparison tolerances against the paper's model columns, matching the
// internal/drive reference tests: capacity reproduces to well under 3%,
// IDR to under 5%. The Ultrastar 36Z15 IDR is excluded — the paper's own
// value (72.1 MB/s) is inconsistent with its stated densities/geometry,
// while every comparable 15K drive reproduces.
const (
	capTolerance = 0.03
	idrTolerance = 0.05
	idrExcluded  = "IBM Ultrastar 36Z15"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

// fieldDiff is one out-of-tolerance model field.
type fieldDiff struct {
	Drive  string
	Field  string
	Model  float64
	Paper  float64
	RelErr float64
}

func (d fieldDiff) String() string {
	return fmt.Sprintf("%s: %s model %.1f vs paper %.1f (%.1f%% off, tolerance %.0f%%)",
		d.Drive, d.Field, d.Model, d.Paper, d.RelErr*100, d.tolerance()*100)
}

func (d fieldDiff) tolerance() float64 {
	if d.Field == "IDR(MB/s)" {
		return idrTolerance
	}
	return capTolerance
}

// compareRow diffs one drive's computed capacity and IDR against the
// paper's model columns. Split out from the table printer so the gate
// logic is testable against injected values.
func compareRow(v drive.ValidationDrive, capGB, idr float64) []fieldDiff {
	var diffs []fieldDiff
	if relErr := math.Abs(capGB-v.PaperModelCapGB) / v.PaperModelCapGB; relErr > capTolerance {
		diffs = append(diffs, fieldDiff{
			Drive: v.Name, Field: "Cap(GB)",
			Model: capGB, Paper: v.PaperModelCapGB, RelErr: relErr,
		})
	}
	if v.Name != idrExcluded {
		paper := float64(v.PaperModelIDR)
		if relErr := math.Abs(idr-paper) / paper; relErr > idrTolerance {
			diffs = append(diffs, fieldDiff{
				Drive: v.Name, Field: "IDR(MB/s)",
				Model: idr, Paper: paper, RelErr: relErr,
			})
		}
	}
	return diffs
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: model capacity and IDR versus datasheets (30 ZBR zones)")
	fmt.Fprintf(w, "%-26s %4s %6s %5s %5s %4s %3s | %9s %9s %9s | %9s %9s %9s\n",
		"Model", "Year", "RPM", "KBPI", "KTPI", "Dia", "Pl",
		"Cap(GB)", "Model", "Paper", "IDR(MB/s)", "Model", "Paper")
	var failures []fieldDiff
	for _, v := range drive.Table1 {
		m, err := drive.New(v.Config())
		if err != nil {
			return fmt.Errorf("%s: %w", v.Name, err)
		}
		capGB, idr := m.Capacity().GB(), float64(m.IDR())
		fmt.Fprintf(w, "%-26s %4d %6.0f %5.0f %5.1f %4.1f %3d | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n",
			v.Name, v.Year, float64(v.RPM), v.KBPI, v.KTPI, float64(v.Diameter), v.Platters,
			v.DatasheetCapacityGB, capGB, v.PaperModelCapGB,
			float64(v.DatasheetIDR), idr, float64(v.PaperModelIDR))
		failures = append(failures, compareRow(v, capGB, idr)...)
	}

	fmt.Fprintln(w, "\nTable 2: rated maximum operating temperatures (envelope invariance)")
	fmt.Fprintf(w, "%-26s %4s %6s %12s %12s\n", "Model", "Year", "RPM", "Wet-bulb", "Max oper.")
	for _, e := range drive.Table2 {
		fmt.Fprintf(w, "%-26s %4d %6.0f %12.1f %12.1f\n",
			e.Name, e.Year, float64(e.RPM), float64(e.ExternalWetBulb), float64(e.MaxOperating))
	}
	fmt.Fprintf(w, "\nThermal envelope (electronics excluded): %v\n", thermal.Envelope)
	fmt.Fprintf(w, "Envelope + electronics (~%v) ~= the rated 55 C class.\n", drive.ElectronicsDelta)

	if len(failures) > 0 {
		fmt.Fprintf(w, "\nFAIL: %d field(s) outside tolerance vs the paper's model columns:\n", len(failures))
		for _, d := range failures {
			fmt.Fprintf(w, "  %s\n", d)
		}
		return fmt.Errorf("paper-reference comparison failed on %d field(s)", len(failures))
	}
	fmt.Fprintf(w, "PASS: all %d Table 1 rows within tolerance (cap %.0f%%, IDR %.0f%%; %s IDR excluded).\n",
		len(drive.Table1), capTolerance*100, idrTolerance*100, idrExcluded)
	return nil
}
