// Command validate reproduces the paper's model-validation tables: Table 1
// (thirteen real SCSI drives: model capacity and IDR against datasheets) and
// Table 2 (rated maximum operating temperatures supporting the constant
// thermal envelope).
package main

import (
	"fmt"
	"os"

	"repro/internal/drive"
	"repro/internal/thermal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Table 1: model capacity and IDR versus datasheets (30 ZBR zones)")
	fmt.Printf("%-26s %4s %6s %5s %5s %4s %3s | %9s %9s %9s | %9s %9s %9s\n",
		"Model", "Year", "RPM", "KBPI", "KTPI", "Dia", "Pl",
		"Cap(GB)", "Model", "Paper", "IDR(MB/s)", "Model", "Paper")
	for _, v := range drive.Table1 {
		m, err := drive.New(v.Config())
		if err != nil {
			return fmt.Errorf("%s: %w", v.Name, err)
		}
		fmt.Printf("%-26s %4d %6.0f %5.0f %5.1f %4.1f %3d | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n",
			v.Name, v.Year, float64(v.RPM), v.KBPI, v.KTPI, float64(v.Diameter), v.Platters,
			v.DatasheetCapacityGB, m.Capacity().GB(), v.PaperModelCapGB,
			float64(v.DatasheetIDR), float64(m.IDR()), float64(v.PaperModelIDR))
	}

	fmt.Println("\nTable 2: rated maximum operating temperatures (envelope invariance)")
	fmt.Printf("%-26s %4s %6s %12s %12s\n", "Model", "Year", "RPM", "Wet-bulb", "Max oper.")
	for _, e := range drive.Table2 {
		fmt.Printf("%-26s %4d %6.0f %12.1f %12.1f\n",
			e.Name, e.Year, float64(e.RPM), float64(e.ExternalWetBulb), float64(e.MaxOperating))
	}
	fmt.Printf("\nThermal envelope (electronics excluded): %v\n", thermal.Envelope)
	fmt.Printf("Envelope + electronics (~%v) ~= the rated 55 C class.\n", drive.ElectronicsDelta)
	return nil
}
