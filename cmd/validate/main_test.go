package main

import (
	"strings"
	"testing"

	"repro/internal/drive"
)

// TestRunPassesOnCurrentModel: the shipped physics reproduces the paper's
// Table 1 model columns, so validate succeeds and says so.
func TestRunPassesOnCurrentModel(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "PASS: all 13 Table 1 rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("passing run printed FAIL:\n%s", out)
	}
}

// TestCompareRowFlagsDrift: injected out-of-tolerance values produce
// per-field diffs naming the drive, the field, both values and the
// relative error — the non-zero-exit path's evidence.
func TestCompareRowFlagsDrift(t *testing.T) {
	v := drive.Table1[0]

	if diffs := compareRow(v, v.PaperModelCapGB, float64(v.PaperModelIDR)); len(diffs) != 0 {
		t.Fatalf("exact values flagged: %v", diffs)
	}

	capOff := v.PaperModelCapGB * 1.10
	idrOff := float64(v.PaperModelIDR) * 0.80
	diffs := compareRow(v, capOff, idrOff)
	if len(diffs) != 2 {
		t.Fatalf("got %d diffs, want 2: %v", len(diffs), diffs)
	}
	capDiff, idrDiff := diffs[0], diffs[1]
	if capDiff.Field != "Cap(GB)" || idrDiff.Field != "IDR(MB/s)" {
		t.Fatalf("unexpected fields: %v", diffs)
	}
	for _, d := range diffs {
		if d.Drive != v.Name {
			t.Errorf("diff names %q, want %q", d.Drive, v.Name)
		}
		msg := d.String()
		if !strings.Contains(msg, v.Name) || !strings.Contains(msg, "% off") {
			t.Errorf("diff message not self-describing: %q", msg)
		}
	}
	if capDiff.RelErr < 0.09 || capDiff.RelErr > 0.11 {
		t.Errorf("cap RelErr = %v, want ~0.10", capDiff.RelErr)
	}
}

// TestCompareRowHonoursIDRExclusion: the paper's own inconsistent 36Z15
// IDR value never fails the gate, but its capacity still does.
func TestCompareRowHonoursIDRExclusion(t *testing.T) {
	var excluded drive.ValidationDrive
	for _, v := range drive.Table1 {
		if v.Name == idrExcluded {
			excluded = v
		}
	}
	if excluded.Name == "" {
		t.Fatalf("%s not in Table1", idrExcluded)
	}
	if diffs := compareRow(excluded, excluded.PaperModelCapGB, 1); len(diffs) != 0 {
		t.Errorf("excluded drive's IDR flagged: %v", diffs)
	}
	diffs := compareRow(excluded, excluded.PaperModelCapGB*2, 1)
	if len(diffs) != 1 || diffs[0].Field != "Cap(GB)" {
		t.Errorf("excluded drive's capacity not gated: %v", diffs)
	}
}
