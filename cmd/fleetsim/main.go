// Command fleetsim runs one fleet-scale thermal simulation from the command
// line and streams the result as NDJSON: one "rack" line per rack as its
// chassis shards complete, then a single "summary" line — the same stream
// shape the simd fleet job serves over HTTP. Output is byte-identical at
// every -workers value (the fleet determinism contract), which is what lets
// CI pin a cooling-failure run as a golden artifact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/units"
)

func main() {
	var (
		racks    = flag.Int("racks", 4, "racks in the room")
		chassis  = flag.Int("chassis", 4, "chassis per rack")
		slots    = flag.Int("slots", 8, "drive slots per chassis")
		requests = flag.Int("requests", 40, "requests per drive stream")
		seed     = flag.Int64("seed", 1, "fleet workload seed")
		airflow  = flag.Float64("airflow", 30, "per-chassis airflow in CFM")
		recirc   = flag.Float64("recirc", 0, "rack exhaust recirculation fraction [0,1)")
		place    = flag.String("placement", "static", "stream placement: static or coolest")
		migrate  = flag.Float64("migrate-at", 0, "migration threshold in C (0 = off)")
		hyst     = flag.Float64("hysteresis", 0, "migration hysteresis in C (0 = 2)")
		workers  = flag.Int("workers", 0, "chassis-shard fan-out (0 = all cores)")

		failRack  = flag.Int("fail-rack", 0, "cooling-failure rack (-1 = room-wide)")
		failAt    = flag.Duration("fail-at", 0, "cooling-failure onset on the sim clock")
		failFor   = flag.Duration("fail-for", 0, "cooling-failure duration (0 = no failure)")
		failDelta = flag.Float64("fail-delta", 0, "cooling-failure inlet rise in C")
	)
	flag.Parse()

	cfg := fleet.Config{
		Topology:  fleet.Topology{Racks: *racks, ChassisPerRack: *chassis, SlotsPerChassis: *slots},
		Scenario:  fleet.Scenario{AirflowCFM: *airflow, Recirculation: *recirc},
		Workload:  fleet.Workload{RequestsPerDrive: *requests, Seed: *seed},
		Placement: fleet.Placement(*place),
		Migration: fleet.Migration{
			ThresholdC:  units.Celsius(*migrate),
			HysteresisC: units.Celsius(*hyst),
		},
		Workers: *workers,
	}
	if *failFor > 0 {
		cfg.Scenario.CoolingFailure = &fleet.CoolingFailure{
			Rack:     *failRack,
			At:       *failAt,
			Duration: *failFor,
			DeltaC:   units.Celsius(*failDelta),
		}
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

type rackLine struct {
	Kind string `json:"kind"`
	fleet.RackSummary
}

type summaryLine struct {
	Kind string `json:"kind"`
	fleet.Summary
}

func run(cfg fleet.Config) error {
	enc := json.NewEncoder(os.Stdout)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	sum, err := fleet.Run(ctx, cfg, func(rs fleet.RackSummary) error {
		return enc.Encode(rackLine{Kind: "rack", RackSummary: rs})
	})
	if err != nil {
		return err
	}
	return enc.Encode(summaryLine{Kind: "summary", Summary: sum})
}
