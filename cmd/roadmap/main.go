// Command roadmap generates the paper's thermally-constrained technology
// roadmap: Table 3 (RPM required for the 40% IDR CGR and its thermal cost),
// Figure 2 (attainable IDR and capacity, 1/2/4 platters x 3 platter sizes),
// Figure 3 (cooling sensitivity), and the section 4.2.2 form-factor study.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/geometry"
	"repro/internal/plot"
	"repro/internal/scaling"
	"repro/internal/units"
)

var sizes = []units.Inches{2.6, 2.1, 1.6}

// workers is the -workers flag, threaded into every roadmap and walk
// configuration (0 = all cores).
var workers int

func main() {
	var (
		table3      = flag.Bool("table3", true, "print Table 3")
		figure2     = flag.Bool("figure2", true, "print the Figure 2 roadmaps")
		figure3     = flag.Bool("figure3", true, "print the Figure 3 cooling study")
		formfactor  = flag.Bool("formfactor", false, "print the 2.5\" form-factor study")
		chart       = flag.Bool("plot", false, "draw the Figure 2 1-platter IDR roadmap as an ASCII chart")
		walk        = flag.Bool("walk", false, "run the section 4 design walk (the methodology steps 1-4, year by year)")
		flagWorkers = flag.Int("workers", 0, "sweep worker count (0 = all cores, 1 = sequential)")
	)
	flag.Parse()
	workers = *flagWorkers
	if err := run(*table3, *figure2, *figure3, *formfactor); err != nil {
		fmt.Fprintln(os.Stderr, "roadmap:", err)
		os.Exit(1)
	}
	if *chart {
		if err := drawFigure2(); err != nil {
			fmt.Fprintln(os.Stderr, "roadmap:", err)
			os.Exit(1)
		}
	}
	if *walk {
		if err := runWalk(); err != nil {
			fmt.Fprintln(os.Stderr, "roadmap:", err)
			os.Exit(1)
		}
	}
}

// runWalk prints the year-by-year design decisions of the paper's section 4
// methodology.
func runWalk() error {
	steps, err := scaling.DesignWalk(scaling.WalkConfig{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Println("Section 4 design walk (what a designer ships each year):")
	for _, s := range steps {
		meets := " "
		if s.MeetsTarget {
			meets = "*"
		}
		fmt.Printf("  %d %s %v x%d @ %6.0f RPM: %7.1f MB/s, %7.1f GB  %s\n",
			s.Year, meets, s.Size, s.Platters, float64(s.RPM),
			float64(s.IDR), s.Capacity.GB(), s.Action)
	}
	return nil
}

// drawFigure2 renders the 1-platter IDR roadmap the way the paper plots it:
// log-scale IDR against year, one curve per platter size plus the 40% CGR
// target line.
func drawFigure2() error {
	pts, err := scaling.Roadmap(scaling.Config{Workers: workers})
	if err != nil {
		return err
	}
	idx := scaling.ByYearSize(pts)
	years := make([]float64, 0, 11)
	target := make([]float64, 0, 11)
	for y := 2002; y <= 2012; y++ {
		years = append(years, float64(y))
		target = append(target, float64(scaling.TargetIDR(y)))
	}
	var c plot.Chart
	c.Title = "Figure 2: 1-platter IDR roadmap (thermal envelope 45.22 C)"
	c.XLabel = "year"
	c.YLabel = "IDR MB/s"
	c.LogY = true
	if err := c.Add(plot.Series{Name: "40% CGR target", X: years, Y: target, Marker: '.'}); err != nil {
		return err
	}
	for _, s := range sizes {
		ys := make([]float64, 0, 11)
		for y := 2002; y <= 2012; y++ {
			ys = append(ys, float64(idx[y][s].MaxIDR))
		}
		if err := c.Add(plot.Series{Name: fmt.Sprintf("%v platter", s), X: years, Y: ys}); err != nil {
			return err
		}
	}
	out, err := c.Render()
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}

func run(table3, figure2, figure3, formfactor bool) error {
	base, err := scaling.Roadmap(scaling.Config{Workers: workers})
	if err != nil {
		return err
	}
	idx := scaling.ByYearSize(base)

	if table3 {
		fmt.Println("Table 3: RPM required for the 40% IDR CGR and its steady temperature")
		fmt.Printf("%4s |", "Year")
		for _, s := range sizes {
			fmt.Printf("  %5.1f\": %9s %7s %8s |", float64(s), "IDRdens", "RPM", "Temp(C)")
		}
		fmt.Printf(" %10s\n", "IDRreq")
		for y := 2002; y <= 2012; y++ {
			fmt.Printf("%4d |", y)
			for _, s := range sizes {
				p := idx[y][s]
				fmt.Printf("          %9.2f %7.0f %8.2f |",
					float64(p.IDRDensity), float64(p.RequiredRPM), float64(p.RequiredTemp))
			}
			fmt.Printf(" %10.2f\n", float64(scaling.TargetIDR(y)))
		}
		fmt.Println()
	}

	if figure2 {
		for _, platters := range []int{1, 2, 4} {
			pts, err := scaling.Roadmap(scaling.Config{Platters: platters, Workers: workers})
			if err != nil {
				return err
			}
			pidx := scaling.ByYearSize(pts)
			fmt.Printf("Figure 2: %d-platter roadmap (envelope %s; cooling budget %.2f C)\n",
				platters, "45.22 C", float64(pts[0].CoolingBudget))
			fmt.Printf("%4s |", "Year")
			for _, s := range sizes {
				fmt.Printf(" %5.1f\": %8s %9s %9s meets |", float64(s), "maxRPM", "IDR MB/s", "Cap GB")
			}
			fmt.Println()
			for y := 2002; y <= 2012; y++ {
				fmt.Printf("%4d |", y)
				for _, s := range sizes {
					p := pidx[y][s]
					meets := " "
					if p.MeetsTarget {
						meets = "*"
					}
					fmt.Printf("         %8.0f %9.1f %9.1f   %s   |",
						float64(p.MaxRPM), float64(p.MaxIDR), p.Capacity.GB(), meets)
				}
				fmt.Println()
			}
			fmt.Println("falloff year:", scaling.FalloffYear(pts))
			fmt.Println()
		}
	}

	if figure3 {
		fmt.Println("Figure 3: cooling sensitivity (1 platter, max IDR in MB/s)")
		fmt.Printf("%4s | %8s |", "Year", "target")
		for _, s := range sizes {
			fmt.Printf(" %5.1f\": %8s %8s %8s |", float64(s), "base", "-5C", "-10C")
		}
		fmt.Println()
		cool5, err := scaling.Roadmap(scaling.Config{AmbientDelta: -5, Workers: workers})
		if err != nil {
			return err
		}
		cool10, err := scaling.Roadmap(scaling.Config{AmbientDelta: -10, Workers: workers})
		if err != nil {
			return err
		}
		i5, i10 := scaling.ByYearSize(cool5), scaling.ByYearSize(cool10)
		for y := 2002; y <= 2012; y++ {
			fmt.Printf("%4d | %8.1f |", y, float64(scaling.TargetIDR(y)))
			for _, s := range sizes {
				fmt.Printf("         %8.1f %8.1f %8.1f |",
					float64(idx[y][s].MaxIDR), float64(i5[y][s].MaxIDR), float64(i10[y][s].MaxIDR))
			}
			fmt.Println()
		}
		fmt.Printf("falloff years: base %d, -5C %d, -10C %d\n\n",
			scaling.FalloffYear(base), scaling.FalloffYear(cool5), scaling.FalloffYear(cool10))
	}

	if formfactor {
		fmt.Println("Section 4.2.2: 2.6\" platter in a 2.5\" enclosure")
		for _, delta := range []units.Celsius{0, -5, -10, -15, -18} {
			pts, err := scaling.Roadmap(scaling.Config{
				FormFactor:   geometry.FormFactor25,
				PlatterSizes: []units.Inches{2.6},
				AmbientDelta: delta,
				Workers:      workers,
			})
			if err != nil {
				return err
			}
			p := scaling.ByYearSize(pts)[2002][2.6]
			fmt.Printf("  ambient %+3.0f C: max RPM %6.0f, 2002 IDR %6.1f MB/s (target %.1f) meets=%v\n",
				float64(delta), float64(p.MaxRPM), float64(p.MaxIDR),
				float64(p.TargetIDR), p.MeetsTarget)
		}
	}
	return nil
}
