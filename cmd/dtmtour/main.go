// Command dtmtour runs the DTM policy tournament from the command line and
// streams the result as NDJSON: one "cell" line per (policy, workload,
// regime) result in enumeration order, then a single "summary" line — the
// same stream shape the simd tournament job serves over HTTP. Output is
// byte-identical at every -workers value (the tournament determinism
// contract), which is what lets CI pin the bracket as a golden artifact.
// With -table, a human-readable scoreboard is printed instead.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/tournament"
)

func main() {
	var (
		policies  = flag.String("policies", "", "comma-separated entrants (empty = reactive,predictive,slack-ramp)")
		workloads = flag.String("workloads", "", "comma-separated trace workloads (empty = all five)")
		regimes   = flag.String("regimes", "", "comma-separated regimes (empty = clean,fault)")
		requests  = flag.Int("requests", 0, "requests per cell (0 = 4000)")
		seed      = flag.Int64("seed", 0, "request-stream seed (0 = 11)")
		lead      = flag.Duration("lead", 0, "predictive controller lead time (0 = policy default)")
		loadScale = flag.Float64("load-scale", 0, "arrival-rate multiplier (0 = 2)")
		workers   = flag.Int("workers", 0, "parallel cell fan-out (0 = 1)")
		table     = flag.Bool("table", false, "print a human-readable scoreboard instead of NDJSON")
	)
	flag.Parse()

	cfg := tournament.Config{
		Policies:  split(*policies),
		Workloads: split(*workloads),
		Regimes:   split(*regimes),
		Requests:  *requests,
		Seed:      *seed,
		LeadTime:  *lead,
		LoadScale: *loadScale,
		Workers:   *workers,
	}
	if err := run(cfg, *table); err != nil {
		fmt.Fprintln(os.Stderr, "dtmtour:", err)
		os.Exit(1)
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

type cellLine struct {
	Kind string `json:"kind"`
	tournament.Cell
}

type summaryLine struct {
	Kind string `json:"kind"`
	tournament.Summary
}

func run(cfg tournament.Config, table bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	if table {
		return runTable(ctx, cfg)
	}
	enc := json.NewEncoder(os.Stdout)
	sum, err := tournament.Run(ctx, cfg, func(c tournament.Cell) error {
		return enc.Encode(cellLine{Kind: "cell", Cell: c})
	})
	if err != nil {
		return err
	}
	return enc.Encode(summaryLine{Kind: "summary", Summary: sum})
}

func runTable(ctx context.Context, cfg tournament.Config) error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKLOAD\tREGIME\tPOLICY\tMEAN ms\tP95 ms\tMAX °C\tOVER ms\tEVENTS\tFLAPS\tSCORE")
	sum, err := tournament.Run(ctx, cfg, func(c tournament.Cell) error {
		failed := ""
		if c.DiskFailed {
			failed = " †"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%.2f\t%.2f\t%.0f\t%d\t%d\t%.2f%s\n",
			c.Workload, c.Regime, c.Policy, c.MeanMS, c.P95MS, c.MaxAirC,
			c.TimeOverMS, c.ThrottleEvents, c.Flaps, c.Score, failed)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "POLICY\tWINS\tMEAN ms\tOVER ms\tEVENTS\tFLAPS\tTOTAL SCORE")
	for _, p := range sum.Policies {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.0f\t%d\t%d\t%.2f\n",
			p.Policy, p.Wins, p.MeanMS, p.TimeOverMS, p.ThrottleEvents, p.Flaps, p.Score)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("\noverall: %s († = drive failed)\n", sum.Overall)
	return nil
}
