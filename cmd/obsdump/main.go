// Command obsdump inspects and diffs the NDJSON metric snapshots the
// simulators write via -metrics-out.
//
//	go run ./cmd/obsdump run.ndjson                     # pretty-print
//	go run ./cmd/obsdump -golden want.ndjson run.ndjson # diff, exit 1 on drift
//
// The golden mode is the CI artifact gate: because snapshots are
// deterministic (sorted series, stable JSON rendering, volatile series
// excluded), a byte-level comparison would already work — but obsdump diffs
// at the series level so a regression names the exact metric that moved
// instead of a line number.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	golden := flag.String("golden", "", "compare the snapshot against this golden file instead of printing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: obsdump [-golden want.ndjson] got.ndjson")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *golden); err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

func run(path, golden string) error {
	got, err := readSnapshot(path)
	if err != nil {
		return err
	}
	if golden == "" {
		dump(got)
		return nil
	}
	want, err := readSnapshot(golden)
	if err != nil {
		return err
	}
	diffs := diff(want, got)
	if len(diffs) == 0 {
		fmt.Printf("obsdump: %d series match %s\n", len(want), golden)
		return nil
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	return fmt.Errorf("%d series differ from %s", len(diffs), golden)
}

func readSnapshot(path string) ([]obs.Metric, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ms, err := obs.ReadNDJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ms, nil
}

// render shows one series' payload compactly for dumps and diff lines.
func render(m obs.Metric) string {
	switch m.Kind {
	case "counter":
		return fmt.Sprintf("%d", m.Count)
	case "gauge":
		if m.Value == nil {
			return "-"
		}
		return fmt.Sprintf("%g", *m.Value)
	case "histogram":
		return fmt.Sprintf("n=%d sum=%g max=%g counts=%v", m.N, m.Sum, m.Max, m.Counts)
	}
	return "?"
}

func dump(ms []obs.Metric) {
	for _, m := range ms {
		fmt.Printf("%-10s %s = %s\n", m.Kind, m.ID(), render(m))
	}
}

// diff compares snapshots series-by-series and returns one readable line
// per drift: changed payloads, series only in the golden, series only in
// the run.
func diff(want, got []obs.Metric) []string {
	wm := make(map[string]obs.Metric, len(want))
	for _, m := range want {
		wm[m.ID()] = m
	}
	gm := make(map[string]obs.Metric, len(got))
	for _, m := range got {
		gm[m.ID()] = m
	}
	ids := make([]string, 0, len(wm)+len(gm))
	for id := range wm {
		ids = append(ids, id)
	}
	for id := range gm {
		if _, ok := wm[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	var out []string
	for _, id := range ids {
		w, inW := wm[id]
		g, inG := gm[id]
		switch {
		case !inG:
			out = append(out, fmt.Sprintf("- %s (only in golden: %s)", id, render(w)))
		case !inW:
			out = append(out, fmt.Sprintf("+ %s (only in run: %s)", id, render(g)))
		case render(w) != render(g) || w.Kind != g.Kind:
			out = append(out, fmt.Sprintf("! %s: golden %s, run %s", id, render(w), render(g)))
		}
	}
	return out
}
