// Command experiments regenerates every table and figure of the paper —
// plus this repository's extension experiments — and prints a
// paper-vs-measured report (the source for EXPERIMENTS.md).
//
// Run everything (the default), or one artifact by id:
//
//	go run ./cmd/experiments
//	go run ./cmd/experiments -only T3
//	go run ./cmd/experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profiling"
)

func main() {
	var (
		requests   = flag.Int("requests", 150000, "requests per Figure 4 workload (0 = the paper's full counts)")
		only       = flag.String("only", "", "run a single experiment by id (T1, F2, X3, ...)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		workers    = flag.Int("workers", 0, "sweep worker count (0 = all cores, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	var oc obs.CLI
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()
	oc.Enable()
	if oc.Registry != nil {
		parallel.SetMetrics(parallel.NewMetrics(oc.Registry))
	}

	opt := core.Options{
		Figure4Requests: *requests,
		Workers:         *workers,
		Obs:             core.Observe{Registry: oc.Registry, Tracer: oc.Tracer},
	}
	if *list {
		for _, e := range core.Experiments(opt) {
			fmt.Printf("  %-3s %s\n", e.ID, e.Title)
		}
		return
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	start := time.Now()
	if *only != "" {
		err = core.RunByID(os.Stdout, *only, opt)
	} else {
		err = core.RunAll(os.Stdout, opt)
	}
	if err == nil {
		err = oc.Flush()
	}
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
}
