// Command experiments regenerates every table and figure of the paper —
// plus this repository's extension experiments — and prints a
// paper-vs-measured report (the source for EXPERIMENTS.md).
//
// Run everything (the default), or one artifact by id:
//
//	go run ./cmd/experiments
//	go run ./cmd/experiments -only T3
//	go run ./cmd/experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		requests = flag.Int("requests", 150000, "requests per Figure 4 workload (0 = the paper's full counts)")
		only     = flag.String("only", "", "run a single experiment by id (T1, F2, X3, ...)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	opt := core.Options{Figure4Requests: *requests}
	if *list {
		for _, e := range core.Experiments(opt) {
			fmt.Printf("  %-3s %s\n", e.ID, e.Title)
		}
		return
	}

	start := time.Now()
	var err error
	if *only != "" {
		err = core.RunByID(os.Stdout, *only, opt)
	} else {
		err = core.RunAll(os.Stdout, opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
}
