package repro

// The parallel sweep engine's benchmark harness: the same grids the paper
// regenerates, at 1/2/4/GOMAXPROCS workers, plus the thermal solve cache
// against the uncached direct path. Results feed BENCH_parallel.json:
// `go test -run '^$' -bench '^BenchmarkParallel' -benchtime 1x`.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
)

// workerCounts is the sweep of pool sizes each grid is timed at.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	if n := parallel.Default(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkParallelFigure4 times the full Figure 4 grid — every workload,
// every RPM step — at each worker count.
func BenchmarkParallelFigure4(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunAllFigure4Workers(20000, w)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(trace.Workloads) {
					b.Fatalf("got %d workloads", len(res))
				}
			}
		})
	}
}

// BenchmarkParallelRoadmap times the three-platter roadmap family (the
// Figure 2 regeneration) at each worker count and reports the thermal
// cache's steady-state hit rate.
func BenchmarkParallelRoadmap(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, platters := range []int{1, 2, 4} {
					if _, err := scaling.Roadmap(scaling.Config{Platters: platters, Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkParallelDesignWalk times the section 4 walk at each worker count.
func BenchmarkParallelDesignWalk(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scaling.DesignWalk(scaling.WalkConfig{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMonteCarlo times the reliability estimator's batch
// fan-out at each worker count.
func BenchmarkParallelMonteCarlo(b *testing.B) {
	m := reliability.Default()
	window := 24 * 365 * time.Hour
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			var est reliability.MCEstimate
			for i := 0; i < b.N; i++ {
				est = m.MonteCarloGroupFailure(reliability.ReferenceTemp+10, 5, window,
					reliability.MCConfig{Trials: 500_000, Seed: 1, Workers: w})
			}
			b.ReportMetric(est.Probability(), "p-fail")
		})
	}
}

// BenchmarkParallelSteadyCache replays the roadmap's operating points
// through one thermal model, cached vs direct — the memoization prong's
// single-core win. The cached pass repeats each point, as the real grids do
// (the roadmap solves each size's envelope point once per year cell).
func BenchmarkParallelSteadyCache(b *testing.B) {
	var points []thermal.Load
	for rpm := 15000.0; rpm <= 240000; rpm *= 1.12 {
		for _, duty := range []float64{0, 1} {
			points = append(points, thermal.Load{
				RPM:     units.RPM(rpm),
				VCMDuty: duty,
				Ambient: thermal.DefaultAmbient,
			})
		}
	}

	run := func(b *testing.B, noCache bool) {
		m, err := thermal.New(thermal.ReferenceDrive)
		if err != nil {
			b.Fatal(err)
		}
		m.NoCache = noCache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for rep := 0; rep < 11; rep++ {
				for _, l := range points {
					_ = m.SteadyState(l)
				}
			}
		}
		b.StopTimer()
		if !noCache {
			b.ReportMetric(m.CacheStats().SteadyHitRate(), "hit-rate")
		}
	}
	b.Run("direct", func(b *testing.B) { run(b, true) })
	b.Run("cached", func(b *testing.B) { run(b, false) })
}
