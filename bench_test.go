package repro

// The benchmark harness: one benchmark per table and figure of the paper.
// Each benchmark regenerates its artifact and reports the headline numbers
// as custom metrics, so `go test -bench=. -benchmem` doubles as the
// reproduction run. The Figure 4 benchmarks scale the trace length down;
// cmd/tracesim replays the full request counts.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/drive"
	"repro/internal/dtm"
	"repro/internal/geometry"
	"repro/internal/power"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
)

// BenchmarkTable1Validation rebuilds the thirteen-drive corpus and checks
// capacity and IDR against the paper's model columns.
func BenchmarkTable1Validation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, v := range drive.Table1 {
			m, err := drive.New(v.Config())
			if err != nil {
				b.Fatal(err)
			}
			if d := relErr(m.Capacity().GB(), v.PaperModelCapGB); d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst*100, "worst-cap-%err")
}

// BenchmarkTable2Envelope evaluates the envelope-invariance property.
func BenchmarkTable2Envelope(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		lo, hi := 1e9, -1e9
		for _, e := range drive.Table2 {
			v := float64(e.MaxOperating)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "rated-max-spread-C")
}

// BenchmarkFigure1Transient runs the Cheetah 15K.3 warm-up to steady state.
func BenchmarkFigure1Transient(b *testing.B) {
	m, err := thermal.New(thermal.ReferenceDrive)
	if err != nil {
		b.Fatal(err)
	}
	load := thermal.WorstCase(15000)
	var final float64
	for i := 0; i < b.N; i++ {
		tr := m.NewTransient(thermal.Uniform(thermal.DefaultAmbient))
		tr.Advance(load, 48*time.Minute)
		final = float64(tr.State().Air)
	}
	b.ReportMetric(final, "T48min-C")
}

// BenchmarkTable3Roadmap generates the required-RPM table for 2002-2012.
func BenchmarkTable3Roadmap(b *testing.B) {
	var rpm2012 float64
	for i := 0; i < b.N; i++ {
		pts, err := scaling.Roadmap(scaling.Config{})
		if err != nil {
			b.Fatal(err)
		}
		idx := scaling.ByYearSize(pts)
		rpm2012 = float64(idx[2012][2.6].RequiredRPM)
	}
	b.ReportMetric(rpm2012, "2.6in-2012-RPM")
}

// BenchmarkFigure2Roadmap generates all three platter-count roadmaps.
func BenchmarkFigure2Roadmap(b *testing.B) {
	var falloff float64
	for i := 0; i < b.N; i++ {
		for _, platters := range []int{1, 2, 4} {
			pts, err := scaling.Roadmap(scaling.Config{Platters: platters})
			if err != nil {
				b.Fatal(err)
			}
			if platters == 1 {
				falloff = float64(scaling.FalloffYear(pts))
			}
		}
	}
	b.ReportMetric(falloff, "1p-falloff-year")
}

// BenchmarkFigure3Cooling generates the cooling-sensitivity roadmaps.
func BenchmarkFigure3Cooling(b *testing.B) {
	var falloff10 float64
	for i := 0; i < b.N; i++ {
		for _, delta := range []units.Celsius{0, -5, -10} {
			pts, err := scaling.Roadmap(scaling.Config{AmbientDelta: delta})
			if err != nil {
				b.Fatal(err)
			}
			if delta == -10 {
				falloff10 = float64(scaling.FalloffYear(pts))
			}
		}
	}
	b.ReportMetric(falloff10, "cooled-falloff-year")
}

// BenchmarkFormFactor runs the section 4.2.2 small-enclosure study.
func BenchmarkFormFactor(b *testing.B) {
	var maxRPM float64
	for i := 0; i < b.N; i++ {
		pts, err := scaling.Roadmap(scaling.Config{
			FormFactor:   geometry.FormFactor25,
			PlatterSizes: []units.Inches{2.6},
		})
		if err != nil {
			b.Fatal(err)
		}
		maxRPM = float64(pts[0].MaxRPM)
	}
	b.ReportMetric(maxRPM, "ff25-max-RPM")
}

// benchFigure4 runs one workload at a reduced request count.
func benchFigure4(b *testing.B, name string, requests int) {
	w, err := trace.WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	w = w.WithRequests(requests)
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFigure4(w)
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Improvements()[0]
	}
	b.ReportMetric(gain*100, "+5kRPM-gain-%")
}

// BenchmarkFigure4Workloads reproduces each Figure 4 panel (scaled traces).
func BenchmarkFigure4Workloads(b *testing.B) {
	cases := []struct {
		name     string
		requests int
	}{
		{"HPL Openmail", 40000},
		{"OLTP Application", 40000},
		{"Search-Engine", 40000},
		{"TPC-C", 40000},
		{"TPC-H", 40000},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) { benchFigure4(b, c.name, c.requests) })
	}
}

// BenchmarkFigure5Slack quantifies the thermal slack per platter size.
func BenchmarkFigure5Slack(b *testing.B) {
	var slack26 float64
	for i := 0; i < b.N; i++ {
		pts, err := dtm.Slack(nil, 1, thermal.DefaultAmbient)
		if err != nil {
			b.Fatal(err)
		}
		slack26 = float64(pts[0].SlackRPM())
	}
	b.ReportMetric(slack26, "2.6in-slack-RPM")
}

// BenchmarkFigure7Throttling sweeps both throttling scenarios.
func BenchmarkFigure7Throttling(b *testing.B) {
	tcools := []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second}
	var lastRatio float64
	for i := 0; i < b.N; i++ {
		for _, e := range []dtm.ThrottleExperiment{dtm.Figure7a(), dtm.Figure7b()} {
			sweep, err := e.Sweep(tcools)
			if err != nil {
				b.Fatal(err)
			}
			lastRatio = sweep[len(sweep)-1].Ratio
		}
	}
	b.ReportMetric(lastRatio, "7b-ratio-at-8s")
}

// BenchmarkDTMPolicies runs the closed-loop watermark controller on a random
// stream (the X1 extension experiment).
func BenchmarkDTMPolicies(b *testing.B) {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		b.Fatal(err)
	}
	reqs := syntheticStream(layout.TotalSectors(), 5000, 100)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disk, err := newDisk(layout, 24534)
		if err != nil {
			b.Fatal(err)
		}
		th, err := thermal.New(geom)
		if err != nil {
			b.Fatal(err)
		}
		ctl := dtm.Controller{Disk: disk, Thermal: th, Mode: dtm.VCMOnly}
		res, err := ctl.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.MeanResponseMillis
	}
	b.ReportMetric(mean, "mean-ms")
}

// BenchmarkCapacityAblation decomposes the reference drive's overheads (X2).
func BenchmarkCapacityAblation(b *testing.B) {
	var ecc float64
	for i := 0; i < b.N; i++ {
		l, err := capacity.New(capacity.Config{
			Geometry: thermal.ReferenceDrive,
			BPI:      533000, TPI: 64000, Zones: 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		ecc = l.Breakdown().ECCLoss
	}
	b.ReportMetric(ecc*100, "ECC-loss-%")
}

// Microbenchmarks of the hot paths.

func BenchmarkSteadyState(b *testing.B) {
	m, err := thermal.New(thermal.ReferenceDrive)
	if err != nil {
		b.Fatal(err)
	}
	load := thermal.WorstCase(24534)
	for i := 0; i < b.N; i++ {
		_ = m.SteadyState(load)
	}
}

func BenchmarkTransientMinute(b *testing.B) {
	m, err := thermal.New(thermal.ReferenceDrive)
	if err != nil {
		b.Fatal(err)
	}
	load := thermal.WorstCase(15000)
	tr := m.NewTransient(thermal.Uniform(28))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Advance(load, time.Minute)
	}
}

func BenchmarkDiskServe(b *testing.B) {
	bpi, tpi := scaling.DefaultTrend().Densities(2002)
	layout, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 3.3, Platters: 4, FormFactor: geometry.FormFactor35},
		BPI:      bpi, TPI: tpi, Zones: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	disk, err := newDisk(layout, 15000)
	if err != nil {
		b.Fatal(err)
	}
	reqs := syntheticStream(layout.TotalSectors(), 1024, 1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := reqs[i%len(reqs)]
		r.Arrival = disk.ReadyTime()
		if _, err := disk.Serve(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCapacityLayout(b *testing.B) {
	cfg := capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 2.6, Platters: 4, FormFactor: geometry.FormFactor35},
		BPI:      533000, TPI: 64000, Zones: 30,
	}
	for i := 0; i < b.N; i++ {
		if _, err := capacity.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	w := trace.Workloads[0].WithRequests(10000)
	for i := 0; i < b.N; i++ {
		if _, err := w.Generate(1 << 28); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmarks of the extension subsystems.

func BenchmarkPowerModel(b *testing.B) {
	pm, err := power.New(thermal.ReferenceDrive)
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	for i := 0; i < b.N; i++ {
		total = float64(pm.Active(24534).Total())
	}
	b.ReportMetric(total, "active-W-at-24.5k")
}

func BenchmarkReliabilityExposure(b *testing.B) {
	rel := reliability.Default()
	var ext float64
	for i := 0; i < b.N; i++ {
		cool := reliability.NewExposure(rel)
		cool.Add(thermal.Envelope-5, time.Hour)
		hot := reliability.NewExposure(rel)
		hot.Add(thermal.Envelope, time.Hour)
		e, err := cool.LifeExtension(hot)
		if err != nil {
			b.Fatal(err)
		}
		ext = e
	}
	b.ReportMetric(ext, "life-extension-5C")
}

func BenchmarkMirrorPolicy(b *testing.B) {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		b.Fatal(err)
	}
	reqs := syntheticStream(layout.TotalSectors(), 4000, 150)
	var switches float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var disks [2]*disksim.Disk
		var models [2]*thermal.Model
		for j := range disks {
			d, err := newDisk(layout, 24534)
			if err != nil {
				b.Fatal(err)
			}
			th, err := thermal.New(geom)
			if err != nil {
				b.Fatal(err)
			}
			disks[j], models[j] = d, th
		}
		warm := models[0].SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.6, Ambient: thermal.DefaultAmbient})
		p := dtm.MirrorPolicy{Disks: disks, Thermal: models, Initial: &warm}
		res, err := p.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		switches = float64(res.Switches)
	}
	b.ReportMetric(switches, "role-switches")
}

func BenchmarkDRPMPolicy(b *testing.B) {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		b.Fatal(err)
	}
	reqs := syntheticStream(layout.TotalSectors(), 4000, 140)
	var transitions float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disk, err := newDisk(layout, 24534)
		if err != nil {
			b.Fatal(err)
		}
		th, err := thermal.New(geom)
		if err != nil {
			b.Fatal(err)
		}
		warm := th.SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.62, Ambient: thermal.DefaultAmbient})
		p := dtm.DRPM{Disk: disk, Thermal: th,
			Levels: []units.RPM{15020, 18000, 21000, 24534}, Initial: &warm}
		res, err := p.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		transitions = float64(res.Transitions)
	}
	b.ReportMetric(transitions, "level-transitions")
}

func BenchmarkLOOKScheduler(b *testing.B) {
	bpi, tpi := scaling.DefaultTrend().Densities(2002)
	layout, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 3.3, Platters: 4, FormFactor: geometry.FormFactor35},
		BPI:      bpi, TPI: tpi, Zones: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	reqs := syntheticStream(layout.TotalSectors(), 2000, 1e9) // saturated backlog
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: 15000, Scheduler: disksim.LOOK})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Simulate(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceAnalyze(b *testing.B) {
	w, err := trace.WorkloadByName("HPL Openmail")
	if err != nil {
		b.Fatal(err)
	}
	w = w.WithRequests(10000)
	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := w.Generate(vol.Capacity())
	if err != nil {
		b.Fatal(err)
	}
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := w.Analyze(reqs)
		if err != nil {
			b.Fatal(err)
		}
		frac = prof.ArmMoveFraction
	}
	b.ReportMetric(frac*100, "arm-move-%")
}

func BenchmarkCounterfactualRoadmap(b *testing.B) {
	var falloff float64
	for i := 0; i < b.N; i++ {
		pts, err := scaling.Roadmap(scaling.Config{Trend: scaling.OptimisticTrend()})
		if err != nil {
			b.Fatal(err)
		}
		falloff = float64(scaling.FalloffYear(pts))
	}
	b.ReportMetric(falloff, "optimistic-falloff-year")
}

func BenchmarkDesignWalk(b *testing.B) {
	var lastCap float64
	for i := 0; i < b.N; i++ {
		steps, err := scaling.DesignWalk(scaling.WalkConfig{})
		if err != nil {
			b.Fatal(err)
		}
		lastCap = steps[len(steps)-1].Capacity.GB()
	}
	b.ReportMetric(lastCap, "2012-capacity-GB")
}

func BenchmarkArrayPlacement(b *testing.B) {
	bay := []array.Slot{
		{Drive: thermal.ReferenceDrive, RPM: 24534, VCMDuty: 1},
		{Drive: thermal.ReferenceDrive, RPM: 10000, VCMDuty: 0.3},
		{Drive: thermal.ReferenceDrive, RPM: 24534, VCMDuty: 1},
		{Drive: thermal.ReferenceDrive, RPM: 10000, VCMDuty: 0.3},
	}
	c := array.Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: 10}
	var hot float64
	for i := 0; i < b.N; i++ {
		_, best, err := array.OptimalOrder(c, bay)
		if err != nil {
			b.Fatal(err)
		}
		hot = float64(array.HottestAir(best))
	}
	b.ReportMetric(hot, "best-hottest-C")
}

func BenchmarkSpinDownAnalysis(b *testing.B) {
	pm, err := power.New(thermal.ReferenceDrive)
	if err != nil {
		b.Fatal(err)
	}
	bpi, tpi := scaling.DefaultTrend().Densities(2002)
	layout, err := capacity.New(capacity.Config{Geometry: thermal.ReferenceDrive, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		b.Fatal(err)
	}
	disk, err := newDisk(layout, 15000)
	if err != nil {
		b.Fatal(err)
	}
	var comps []disksim.Completion
	for _, r := range syntheticStream(layout.TotalSectors(), 2000, 5) { // sparse: 5 req/s
		c, err := disk.Serve(r)
		if err != nil {
			b.Fatal(err)
		}
		comps = append(comps, c)
	}
	var savings float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pm.EvaluateSpinDown(15000, comps, power.SpinDownPolicy{IdleTimeout: 2 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		savings = res.Savings()
	}
	b.ReportMetric(savings*100, "energy-savings-%")
}

// degradedFixture builds a volume with member 0 failed, a recovery session,
// and a request stream, for the degraded-mode benchmarks.
func degradedFixture(b *testing.B, level raid.Level, n int, spares int, rebuildMB float64) (*raid.RecoverySession, []raid.Request) {
	b.Helper()
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: thermal.ReferenceDrive, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		b.Fatal(err)
	}
	disks := make([]*disksim.Disk, n)
	for i := range disks {
		if disks[i], err = newDisk(layout, 15020); err != nil {
			b.Fatal(err)
		}
	}
	v, err := raid.New(level, disks, raid.DefaultStripeUnit)
	if err != nil {
		b.Fatal(err)
	}
	var sp []*disksim.Disk
	for i := 0; i < spares; i++ {
		d, err := newDisk(layout, 15020)
		if err != nil {
			b.Fatal(err)
		}
		sp = append(sp, d)
	}
	s, err := raid.NewRecoverySession(v, raid.RecoveryConfig{
		Reliability: reliability.Default(), RebuildMBPerSec: rebuildMB,
	}, sp...)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.FailDisk(0, 0); err != nil {
		b.Fatal(err)
	}
	rs := syntheticStream(v.Capacity(), 400, 120)
	reqs := make([]raid.Request, len(rs))
	for i, r := range rs {
		reqs[i] = raid.Request{ID: r.ID, Arrival: r.Arrival, Block: r.LBN, Sectors: r.Sectors, Write: r.Write}
	}
	return s, reqs
}

// BenchmarkDegradedMirrorService prices RAID-1 failover: every read lands on
// the one survivor, every write is redundancy-exposed.
func BenchmarkDegradedMirrorService(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, reqs := degradedFixture(b, raid.RAID1, 2, 0, raid.DefaultRebuildMBPerSec)
		b.StartTimer()
		rep, err := s.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		var sum time.Duration
		for _, c := range rep.Completions {
			sum += c.Response()
		}
		penalty = float64(sum) / float64(len(rep.Completions)) / float64(time.Millisecond)
	}
	b.ReportMetric(penalty, "degraded-mean-ms")
}

// BenchmarkDegradedRAID5Reconstruction prices the k-1 fan-out + XOR path of
// degraded RAID-5 reads.
func BenchmarkDegradedRAID5Reconstruction(b *testing.B) {
	var recon float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, reqs := degradedFixture(b, raid.RAID5, 4, 0, raid.DefaultRebuildMBPerSec)
		b.StartTimer()
		rep, err := s.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		recon = float64(rep.Reconstructions)
	}
	b.ReportMetric(recon, "reconstructed-sectors")
}

// BenchmarkRebuildSession runs the mirror failover with a hot spare and a
// rebuild fast enough to finish inside the trace, reporting the rebuild
// window's double-failure risk.
func BenchmarkRebuildSession(b *testing.B) {
	var risk float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, reqs := degradedFixture(b, raid.RAID1, 2, 1, 5e5)
		b.StartTimer()
		rep, err := s.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		completed := false
		for _, e := range rep.Events {
			if e.Kind == raid.EventRebuildCompleted {
				completed = true
			}
		}
		if !completed {
			b.Fatal("rebuild did not complete inside the trace")
		}
		risk = rep.RebuildRisk
	}
	b.ReportMetric(risk*1e9, "rebuild-risk-1e-9")
}

// --- Streaming engine vs whole-trace batch (results in BENCH_sim.json) ---

// benchSink defeats dead-code elimination in the streaming benchmarks.
var benchSink int

// simBenchWorkload returns the TPC-C mix scaled to n requests.
func simBenchWorkload(b *testing.B, n int) trace.Params {
	b.Helper()
	for _, w := range trace.Workloads {
		if w.Name == "TPC-C" {
			return w.WithRequests(n)
		}
	}
	b.Fatal("TPC-C workload missing")
	return trace.Params{}
}

// BenchmarkSimTraceSource pins the memory contract of the lazy trace
// generator: Generate materializes the whole request slice (allocations grow
// with the trace length), while draining Stream costs a fixed handful of
// allocations no matter how long the trace is.
func BenchmarkSimTraceSource(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		w := simBenchWorkload(b, n)
		vol, err := w.BuildVolume(w.BaselineRPM)
		if err != nil {
			b.Fatal(err)
		}
		sectors := vol.Capacity()
		b.Run(fmt.Sprintf("batch-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reqs, err := w.Generate(sectors)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = len(reqs)
			}
		})
		b.Run(fmt.Sprintf("stream-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src, err := w.Stream(sectors)
				if err != nil {
					b.Fatal(err)
				}
				count := 0
				for {
					if _, ok := src.Next(); !ok {
						break
					}
					count++
				}
				benchSink = count
			}
		})
	}
}

// BenchmarkSimVolumeBatch1M replays a million TPC-C requests through the
// whole-trace path: the request and completion slices dominate the
// allocation profile.
func BenchmarkSimVolumeBatch1M(b *testing.B) {
	w := simBenchWorkload(b, 1_000_000)
	var mean float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vol, err := w.BuildVolume(w.BaselineRPM)
		if err != nil {
			b.Fatal(err)
		}
		reqs, err := w.Generate(vol.Capacity())
		if err != nil {
			b.Fatal(err)
		}
		comps, err := vol.SimulateBatch(reqs)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, c := range comps {
			sum += c.Response().Seconds() * 1e3
		}
		mean = sum / float64(len(comps))
	}
	b.ReportMetric(mean, "mean-ms")
}

// BenchmarkSimVolumeStream1M is the same workload on the event engine with
// the O(1) streaming accumulators: no slice ever holds the trace, so the
// allocation count stays flat as the request count grows.
func BenchmarkSimVolumeStream1M(b *testing.B) {
	w := simBenchWorkload(b, 1_000_000)
	var m float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vol, err := w.BuildVolume(w.BaselineRPM)
		if err != nil {
			b.Fatal(err)
		}
		src, err := w.Stream(vol.Capacity())
		if err != nil {
			b.Fatal(err)
		}
		var mean stats.Running
		err = vol.RunStream(sim.NewEngine(), src,
			sim.SinkFunc[raid.Completion](func(c raid.Completion) { mean.Add(c.Response()) }))
		if err != nil {
			b.Fatal(err)
		}
		m = mean.Mean()
	}
	b.ReportMetric(m, "mean-ms")
}
