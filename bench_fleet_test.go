package repro

// Fleet-scale benchmarks (results in BENCH_fleet.json): the sharded fleet
// run sequentially and fanned out over the shard pool, on the same seeded
// configuration. allocs/op is the contract under test — the streaming
// window keeps live state at O(in-flight chassis), so allocations must not
// grow with worker count, and the parallel run must reproduce the
// sequential aggregates exactly (the bit-identity contract).

import (
	"context"
	"testing"

	"repro/internal/fleet"
)

// benchFleetConfig is the benchmark fleet: 8 racks x 4 chassis x 8 slots =
// 256 drives with recirculation and a rack-local cooling failure, big
// enough that sharding matters and every coupling path is exercised.
func benchFleetConfig(workers int) fleet.Config {
	return fleet.Config{
		Topology:  fleet.Topology{Racks: 8, ChassisPerRack: 4, SlotsPerChassis: 8},
		Scenario:  fleet.Scenario{AirflowCFM: 30, Recirculation: 0.2},
		Workload:  fleet.Workload{RequestsPerDrive: 30, Seed: 17},
		Placement: fleet.PlaceCoolest,
		Migration: fleet.Migration{ThresholdC: 31, HysteresisC: 0.5},
		Workers:   workers,
	}
}

func benchFleetRun(b *testing.B, workers int) {
	cfg := benchFleetConfig(workers)
	var sum fleet.Summary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = fleet.Run(context.Background(), cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.HottestAirC, "hottest-C")
	b.ReportMetric(float64(sum.Requests), "requests")
}

// BenchmarkFleetRun is the sequential baseline: every chassis shard on one
// goroutine, merges in topology order.
func BenchmarkFleetRun(b *testing.B) { benchFleetRun(b, 1) }

// BenchmarkFleetRunParallel fans the same fleet out over the shard pool;
// the reported aggregates must match the sequential run exactly.
func BenchmarkFleetRunParallel(b *testing.B) { benchFleetRun(b, 0) }
