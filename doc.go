// Package repro reproduces "Disk Drive Roadmap from the Thermal Perspective:
// A Case for Dynamic Thermal Management" (Gurumurthi, Sivasubramaniam,
// Natarajan; Penn State CSE-05-001 / ISCA 2005) as a Go library.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the runnable entry points are the binaries under cmd/ and the
// examples under examples/. The benchmarks in bench_test.go regenerate every
// table and figure of the paper.
package repro
